package transport

import (
	"context"
	"sync"

	"dimatch/internal/wire"
)

// Mux multiplexes concurrent request/reply exchanges over one Link. The data
// center owns one Mux per station link: sends are serialized so concurrent
// searches cannot interleave frames, and a dispatcher goroutine routes every
// incoming reply to the exchange that requested it by wire request ID.
//
// A caller whose context is cancelled simply abandons its exchange: the
// pending entry is dropped and the station's late reply, arriving with a
// request ID nobody is waiting on, is discarded by the dispatcher without
// disturbing other exchanges on the link.
type Mux struct {
	link Link

	sendMu sync.Mutex // serializes frames onto the link

	mu      sync.Mutex
	pending map[uint32]chan wire.Message // dimatch:guardedby mu
	nextID  uint32                       // dimatch:guardedby mu
	err     error                        // dimatch:guardedby mu — first link failure, sticky
	done    chan struct{}                // closed on link failure or Close
}

// NewMux wraps a link and starts its dispatcher goroutine. The caller must
// Close the mux (which closes the link) to release the goroutine.
func NewMux(link Link) *Mux {
	m := &Mux{
		link:    link,
		pending: make(map[uint32]chan wire.Message),
		done:    make(chan struct{}),
	}
	go m.dispatch()
	return m
}

// dispatch is the receive loop: it routes each reply to the pending exchange
// with the matching request ID and drops replies nobody awaits (abandoned by
// cancellation). It exits on the first receive error, failing the mux.
func (m *Mux) dispatch() {
	for {
		msg, err := m.link.Recv()
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[msg.Request]
		if ok {
			delete(m.pending, msg.Request)
		}
		m.mu.Unlock()
		if ok {
			ch <- msg // buffered, exactly one delivery per ID: never blocks
		}
	}
}

// fail records the first error and wakes every waiter. Idempotent.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.done)
	}
	m.mu.Unlock()
}

// exchangeScratch is RoundtripMany's per-call working set — the request ID
// and reply-channel slices — recycled through scratchPool so the search fan
// paths do not allocate two slices per station round. Only the slices are
// reused: each exchange still gets a fresh buffered channel, because a late
// dispatcher delivery into an abandoned channel must never surface in a
// subsequent call.
type exchangeScratch struct {
	ids   []uint32
	chans []chan wire.Message
}

var scratchPool = sync.Pool{New: func() any { return new(exchangeScratch) }}

// grow returns the scratch slices sized to n, reusing capacity.
func (sc *exchangeScratch) grow(n int) ([]uint32, []chan wire.Message) {
	if cap(sc.ids) < n {
		sc.ids = make([]uint32, n)
		sc.chans = make([]chan wire.Message, n)
	}
	sc.ids = sc.ids[:n]
	sc.chans = sc.chans[:n]
	return sc.ids, sc.chans
}

// release drops the channel references (they are one-shot) and returns the
// scratch to the pool. Callers must not release while the send goroutine
// can still read the ID slice — see RoundtripMany's cancellation path.
func (sc *exchangeScratch) release() {
	for i := range sc.chans {
		sc.chans[i] = nil
	}
	scratchPool.Put(sc)
}

// Roundtrip stamps msg with a fresh request ID, sends it, and waits for the
// matching reply, the context's cancellation, or link failure. It is safe
// for any number of concurrent callers. It is the single-message case of
// RoundtripMany, so both exchange shapes share one implementation of the
// ID-allocation, send and reply/failure-race logic.
func (m *Mux) Roundtrip(ctx context.Context, msg wire.Message) (wire.Message, error) {
	replies, err := m.RoundtripMany(ctx, []wire.Message{msg})
	if err != nil {
		return wire.Message{}, err
	}
	return replies[0], nil
}

// RoundtripMany pipelines several exchanges: every request is stamped with
// its own ID and sent back-to-back without waiting for replies, then all
// replies are collected. Over a real network this costs one round-trip of
// latency instead of len(msgs), which is what keeps the per-query fallback
// path (stations that cannot accept batch frames) from serializing a whole
// search on RTTs. Replies are returned in request order regardless of
// arrival order. On any failure — send error, link failure, cancellation —
// every exchange of the call is abandoned and the first error returned.
func (m *Mux) RoundtripMany(ctx context.Context, msgs []wire.Message) ([]wire.Message, error) {
	if len(msgs) == 0 {
		return nil, nil
	}
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return nil, err
	}
	sc := scratchPool.Get().(*exchangeScratch)
	ids, chans := sc.grow(len(msgs))
	for i := range msgs {
		// 0 is reserved for fire-and-forget frames, and an ID still pending
		// (possible once the counter wraps on a long-lived link) must not be
		// reissued: the old exchange's reply would be routed to the new one.
		for {
			m.nextID++
			if m.nextID == 0 {
				m.nextID = 1
			}
			if _, busy := m.pending[m.nextID]; !busy {
				break
			}
		}
		ids[i] = m.nextID
		chans[i] = make(chan wire.Message, 1)
		m.pending[ids[i]] = chans[i]
	}
	m.mu.Unlock()

	abandon := func() {
		for _, id := range ids {
			m.forget(id)
		}
	}

	// One goroutine streams every frame, so a caller's deadline is honored
	// even while the link blocks (a stalled TCP peer, a full pipe): the
	// caller abandons the exchanges promptly, and the blocked send resolves
	// when the link drains or closes. The loop checks for cancellation and
	// mux failure between frames: once the call is abandoned, pushing the
	// remaining now-useless frames would only hold sendMu against
	// concurrent searches on the link.
	sendDone := make(chan error, 1)
	go func() {
		m.sendMu.Lock()
		defer m.sendMu.Unlock()
		for i, msg := range msgs {
			if err := ctx.Err(); err != nil {
				sendDone <- err
				return
			}
			select {
			case <-m.done:
				sendDone <- m.Err()
				return
			default:
			}
			//dimatch:allow lockio — sendMu exists precisely to serialize link writes; Send is non-blocking on the pipe transport
			if err := m.link.Send(msg.WithRequest(ids[i])); err != nil {
				sendDone <- err
				return
			}
		}
		sendDone <- nil
	}()
	select {
	case err := <-sendDone:
		if err != nil {
			abandon()
			sc.release()
			return nil, err
		}
	case <-ctx.Done():
		// The send goroutine may still be walking the ID slice; the scratch
		// leaks to the GC instead of the pool, which is the rare path.
		abandon()
		return nil, ctx.Err()
	case <-m.done:
		abandon()
		return nil, m.Err()
	}

	// From here the send goroutine has exited, so the scratch can be
	// recycled on every return.
	replies := make([]wire.Message, len(msgs))
	for i, ch := range chans {
		select {
		case replies[i] = <-ch:
		case <-ctx.Done():
			abandon()
			sc.release()
			return nil, ctx.Err()
		case <-m.done:
			// The reply may have been delivered in the instant before failure.
			select {
			case replies[i] = <-ch:
				continue
			default:
			}
			abandon()
			sc.release()
			return nil, m.Err()
		}
	}
	sc.release()
	return replies, nil
}

// forget abandons a pending exchange; a late reply for it will be dropped.
func (m *Mux) forget(id uint32) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// Send transmits a fire-and-forget frame (request ID 0), serialized against
// in-flight roundtrips.
func (m *Mux) Send(msg wire.Message) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	//dimatch:allow lockio — sendMu exists precisely to serialize link writes; Send is non-blocking on the pipe transport
	return m.link.Send(msg.WithRequest(0))
}

// InFlight returns the number of exchanges currently awaiting a reply on
// the link. It is an observability gauge for flow control: a streaming
// flush path that keeps queuing exchanges faster than the peer answers
// shows up here as a growing backlog before anything times out.
func (m *Mux) InFlight() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// Err returns the sticky link failure, if any.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Close closes the underlying link and fails every pending and future
// exchange with ErrClosed.
func (m *Mux) Close() error {
	err := m.link.Close()
	m.fail(ErrClosed)
	return err
}
