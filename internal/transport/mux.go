package transport

import (
	"context"
	"sync"

	"dimatch/internal/wire"
)

// Mux multiplexes concurrent request/reply exchanges over one Link. The data
// center owns one Mux per station link: sends are serialized so concurrent
// searches cannot interleave frames, and a dispatcher goroutine routes every
// incoming reply to the exchange that requested it by wire request ID.
//
// A caller whose context is cancelled simply abandons its exchange: the
// pending entry is dropped and the station's late reply, arriving with a
// request ID nobody is waiting on, is discarded by the dispatcher without
// disturbing other exchanges on the link.
type Mux struct {
	link Link

	sendMu sync.Mutex // serializes frames onto the link

	mu      sync.Mutex
	pending map[uint32]chan wire.Message
	nextID  uint32
	err     error         // first link failure, sticky
	done    chan struct{} // closed on link failure or Close
}

// NewMux wraps a link and starts its dispatcher goroutine. The caller must
// Close the mux (which closes the link) to release the goroutine.
func NewMux(link Link) *Mux {
	m := &Mux{
		link:    link,
		pending: make(map[uint32]chan wire.Message),
		done:    make(chan struct{}),
	}
	go m.dispatch()
	return m
}

// dispatch is the receive loop: it routes each reply to the pending exchange
// with the matching request ID and drops replies nobody awaits (abandoned by
// cancellation). It exits on the first receive error, failing the mux.
func (m *Mux) dispatch() {
	for {
		msg, err := m.link.Recv()
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[msg.Request]
		if ok {
			delete(m.pending, msg.Request)
		}
		m.mu.Unlock()
		if ok {
			ch <- msg // buffered, exactly one delivery per ID: never blocks
		}
	}
}

// fail records the first error and wakes every waiter. Idempotent.
func (m *Mux) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
		close(m.done)
	}
	m.mu.Unlock()
}

// Roundtrip stamps msg with a fresh request ID, sends it, and waits for the
// matching reply, the context's cancellation, or link failure. It is safe
// for any number of concurrent callers.
func (m *Mux) Roundtrip(ctx context.Context, msg wire.Message) (wire.Message, error) {
	m.mu.Lock()
	if m.err != nil {
		err := m.err
		m.mu.Unlock()
		return wire.Message{}, err
	}
	// 0 is reserved for fire-and-forget frames, and an ID still pending
	// (possible once the counter wraps on a long-lived link) must not be
	// reissued: the old exchange's reply would be routed to the new one.
	for {
		m.nextID++
		if m.nextID == 0 {
			m.nextID = 1
		}
		if _, busy := m.pending[m.nextID]; !busy {
			break
		}
	}
	id := m.nextID
	ch := make(chan wire.Message, 1)
	m.pending[id] = ch
	m.mu.Unlock()

	// The send runs in its own goroutine so a caller's deadline is honored
	// even while the link blocks (a stalled TCP peer, a full pipe): the
	// caller abandons the exchange promptly, and the blocked send resolves
	// when the link drains or closes.
	sendDone := make(chan error, 1)
	go func() {
		m.sendMu.Lock()
		err := m.link.Send(msg.WithRequest(id))
		m.sendMu.Unlock()
		sendDone <- err
	}()
	select {
	case err := <-sendDone:
		if err != nil {
			m.forget(id)
			return wire.Message{}, err
		}
	case <-ctx.Done():
		m.forget(id)
		return wire.Message{}, ctx.Err()
	case <-m.done:
		m.forget(id)
		m.mu.Lock()
		err := m.err
		m.mu.Unlock()
		return wire.Message{}, err
	}

	select {
	case reply := <-ch:
		return reply, nil
	case <-ctx.Done():
		m.forget(id)
		return wire.Message{}, ctx.Err()
	case <-m.done:
		// The reply may have been delivered in the instant before failure.
		select {
		case reply := <-ch:
			return reply, nil
		default:
		}
		m.forget(id)
		m.mu.Lock()
		err := m.err
		m.mu.Unlock()
		return wire.Message{}, err
	}
}

// forget abandons a pending exchange; a late reply for it will be dropped.
func (m *Mux) forget(id uint32) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// Send transmits a fire-and-forget frame (request ID 0), serialized against
// in-flight roundtrips.
func (m *Mux) Send(msg wire.Message) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	return m.link.Send(msg.WithRequest(0))
}

// Err returns the sticky link failure, if any.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Close closes the underlying link and fails every pending and future
// exchange with ErrClosed.
func (m *Mux) Close() error {
	err := m.link.Close()
	m.fail(ErrClosed)
	return err
}
