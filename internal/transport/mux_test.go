package transport

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"dimatch/internal/wire"
)

// echoStation answers every request with its own payload, echoing the
// request ID the way a base station loop does. It stops on shutdown or link
// closure. Requests whose payload is "hold" are not answered until release
// is closed — a controllable stall for cancellation tests.
func echoStation(t *testing.T, link Link, release <-chan struct{}) {
	t.Helper()
	for {
		msg, err := link.Recv()
		if err != nil {
			return
		}
		if msg.Kind == wire.KindShutdown {
			return
		}
		if bytes.Equal(msg.Payload, []byte("hold")) && release != nil {
			<-release
		}
		reply := wire.Message{Kind: wire.KindReports, Request: msg.Request, Payload: msg.Payload}
		if err := link.Send(reply); err != nil {
			return
		}
	}
}

func TestMuxConcurrentRoundtrips(t *testing.T) {
	center, station := Pipe(nil, nil)
	go echoStation(t, station, nil)
	m := NewMux(center)
	defer m.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload := []byte{byte(i), byte(i >> 8)}
			reply, err := m.Roundtrip(context.Background(), wire.Message{Kind: wire.KindShipAll, Payload: payload})
			if err != nil {
				t.Errorf("roundtrip %d: %v", i, err)
				return
			}
			if !bytes.Equal(reply.Payload, payload) {
				t.Errorf("roundtrip %d got someone else's reply: %v", i, reply.Payload)
			}
		}()
	}
	wg.Wait()
}

func TestMuxCancellationDoesNotPoisonLink(t *testing.T) {
	center, station := Pipe(nil, nil)
	release := make(chan struct{})
	go echoStation(t, station, release)
	m := NewMux(center)
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.Roundtrip(ctx, wire.Message{Kind: wire.KindShipAll, Payload: []byte("hold")})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled roundtrip did not return")
	}

	// Let the stalled reply go out: the dispatcher must drop it (nobody is
	// waiting on its ID) and later exchanges must still work.
	close(release)
	reply, err := m.Roundtrip(context.Background(), wire.Message{Kind: wire.KindShipAll, Payload: []byte("after")})
	if err != nil {
		t.Fatalf("link poisoned after cancellation: %v", err)
	}
	if !bytes.Equal(reply.Payload, []byte("after")) {
		t.Fatalf("got stale reply %q", reply.Payload)
	}
}

func TestMuxCloseFailsPendingAndFuture(t *testing.T) {
	center, station := Pipe(nil, nil)
	go echoStation(t, station, make(chan struct{})) // never released: all "hold" requests stall
	m := NewMux(center)

	errc := make(chan error, 1)
	go func() {
		_, err := m.Roundtrip(context.Background(), wire.Message{Kind: wire.KindShipAll, Payload: []byte("hold")})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pending roundtrip survived Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending roundtrip did not fail on Close")
	}
	if _, err := m.Roundtrip(context.Background(), wire.ShipAllMessage()); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close roundtrip err = %v, want ErrClosed", err)
	}
	if m.Err() == nil {
		t.Fatal("Err() should report the failure")
	}
}

func TestMuxPeerDeathFailsPending(t *testing.T) {
	center, station := Pipe(nil, nil)
	m := NewMux(center)
	defer m.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := m.Roundtrip(context.Background(), wire.ShipAllMessage())
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	station.Close() // the station dies mid-exchange
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("roundtrip survived peer death")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("roundtrip did not fail on peer death")
	}
}

func TestMuxFireAndForgetUsesRequestZero(t *testing.T) {
	center, station := Pipe(nil, nil)
	m := NewMux(center)
	defer m.Close()
	if err := m.Send(wire.ShutdownMessage()); err != nil {
		t.Fatal(err)
	}
	got, err := station.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != wire.KindShutdown || got.Request != 0 {
		t.Fatalf("got %+v, want shutdown with request 0", got)
	}
}

func TestMuxRoundtripManyOrdersReplies(t *testing.T) {
	center, station := Pipe(nil, nil)
	go echoStation(t, station, nil)
	m := NewMux(center)
	defer m.Close()

	msgs := make([]wire.Message, 9)
	for i := range msgs {
		msgs[i] = wire.Message{Kind: wire.KindShipAll, Payload: []byte{byte(i + 1)}}
	}
	replies, err := m.RoundtripMany(context.Background(), msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(replies) != len(msgs) {
		t.Fatalf("%d replies, want %d", len(replies), len(msgs))
	}
	for i, r := range replies {
		if !bytes.Equal(r.Payload, msgs[i].Payload) {
			t.Fatalf("reply %d out of order: got %v", i, r.Payload)
		}
	}
	// Empty input is a no-op, not an error.
	if replies, err := m.RoundtripMany(context.Background(), nil); err != nil || replies != nil {
		t.Fatalf("empty call: %v, %v", replies, err)
	}
}

func TestMuxRoundtripManyCancellation(t *testing.T) {
	center, station := Pipe(nil, nil)
	release := make(chan struct{})
	go echoStation(t, station, release)
	m := NewMux(center)
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := m.RoundtripMany(ctx, []wire.Message{
			{Kind: wire.KindShipAll, Payload: []byte("hold")},
			{Kind: wire.KindShipAll, Payload: []byte("second")},
		})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled RoundtripMany did not return")
	}

	// The abandoned replies must not poison later exchanges.
	close(release)
	reply, err := m.Roundtrip(context.Background(), wire.Message{Kind: wire.KindShipAll, Payload: []byte("after")})
	if err != nil || !bytes.Equal(reply.Payload, []byte("after")) {
		t.Fatalf("link poisoned: %v %v", reply.Payload, err)
	}
}

func TestMuxRoundtripManyPeerDeath(t *testing.T) {
	center, station := Pipe(nil, nil)
	m := NewMux(center)
	defer m.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := m.RoundtripMany(context.Background(), []wire.Message{
			wire.ShipAllMessage(), wire.ShipAllMessage(),
		})
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	station.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("RoundtripMany survived peer death")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RoundtripMany did not fail on peer death")
	}
}
