package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"dimatch/internal/wire"
)

func TestPipeRoundTrip(t *testing.T) {
	var meter Meter
	a, b := Pipe(&meter, nil)
	defer a.Close()
	defer b.Close()

	want := wire.Message{Kind: wire.KindReports, Payload: []byte("hello")}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || string(got.Payload) != "hello" {
		t.Fatalf("got %+v", got)
	}
	if meter.Messages() != 1 {
		t.Fatalf("meter messages = %d", meter.Messages())
	}
	if meter.Bytes() != uint64(want.EncodedSize()) {
		t.Fatalf("meter bytes = %d, want %d", meter.Bytes(), want.EncodedSize())
	}
}

func TestPipeBidirectional(t *testing.T) {
	a, b := Pipe(nil, nil)
	defer a.Close()
	defer b.Close()
	if err := b.Send(wire.ShipAllMessage()); err != nil {
		t.Fatal(err)
	}
	m, err := a.Recv()
	if err != nil || m.Kind != wire.KindShipAll {
		t.Fatalf("recv = %+v, %v", m, err)
	}
}

func TestPipeCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe(nil, nil)
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestPipePeerCloseUnblocksRecv(t *testing.T) {
	a, b := Pipe(nil, nil)
	defer a.Close()
	done := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on peer close")
	}
}

func TestPipeSendAfterCloseFails(t *testing.T) {
	a, b := Pipe(nil, nil)
	_ = b
	a.Close()
	if err := a.Send(wire.ShipAllMessage()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestPipeDrainsBufferedAfterPeerClose(t *testing.T) {
	a, b := Pipe(nil, nil)
	defer a.Close()
	if err := b.Send(wire.ShutdownMessage()); err != nil {
		t.Fatal(err)
	}
	b.Close()
	// The already-sent message should still be deliverable.
	m, err := a.Recv()
	if err != nil {
		t.Fatalf("buffered message lost: %v", err)
	}
	if m.Kind != wire.KindShutdown {
		t.Fatalf("got %v", m.Kind)
	}
}

func TestMeterNilSafe(t *testing.T) {
	var m *Meter
	m.Add(10) // must not panic
	if m.Bytes() != 0 || m.Messages() != 0 {
		t.Fatal("nil meter should read zero")
	}
	m.Reset()
}

func TestMeterConcurrent(t *testing.T) {
	var meter Meter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				meter.Add(3)
			}
		}()
	}
	wg.Wait()
	if meter.Messages() != 8000 || meter.Bytes() != 24000 {
		t.Fatalf("meter = %d msgs / %d bytes", meter.Messages(), meter.Bytes())
	}
	meter.Reset()
	if meter.Messages() != 0 || meter.Bytes() != 0 {
		t.Fatal("reset failed")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	var meter Meter
	ln, err := Listen("127.0.0.1:0", &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type acceptResult struct {
		link Link
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		link, err := ln.Accept()
		accepted <- acceptResult{link, err}
	}()

	client, err := Dial(ln.Addr(), &meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	res := <-accepted
	if res.err != nil {
		t.Fatal(res.err)
	}
	server := res.link
	defer server.Close()

	want := wire.Message{Kind: wire.KindBFMatches, Payload: []byte{9, 9}}
	if err := client.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || len(got.Payload) != 2 {
		t.Fatalf("got %+v", got)
	}

	// And the reverse direction.
	if err := server.Send(wire.ShutdownMessage()); err != nil {
		t.Fatal(err)
	}
	back, err := client.Recv()
	if err != nil || back.Kind != wire.KindShutdown {
		t.Fatalf("reverse: %+v, %v", back, err)
	}
	if meter.Messages() != 2 {
		t.Fatalf("meter messages = %d", meter.Messages())
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Link, 1)
	go func() {
		link, err := ln.Accept()
		if err == nil {
			accepted <- link
		}
	}()
	client, err := Dial(ln.Addr(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	client.Close()
	if _, err := server.Recv(); err == nil {
		t.Fatal("expected error after peer close")
	}
	server.Close()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil, nil); err == nil {
		t.Fatal("expected connection failure")
	}
}
