package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"

	"dimatch/internal/wire"
)

// tcpLink frames wire messages over a TCP connection.
type tcpLink struct {
	conn      net.Conn
	r         *bufio.Reader
	sendMeter *Meter
	recvMeter *Meter

	sendMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
}

// NewTCPLink wraps an established connection. Unlike the in-process pipe —
// whose two ends share one process, so metering sends covers both
// directions — a TCP end meters its own sends on sendMeter and its receives
// on recvMeter (either may be nil): the peer's meters live in another
// process.
func NewTCPLink(conn net.Conn, sendMeter, recvMeter *Meter) Link {
	return &tcpLink{
		conn:      conn,
		r:         bufio.NewReaderSize(conn, 1<<16),
		sendMeter: sendMeter,
		recvMeter: recvMeter,
	}
}

// Dial connects to a listening peer.
func Dial(addr string, sendMeter, recvMeter *Meter) (Link, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return NewTCPLink(conn, sendMeter, recvMeter), nil
}

// Listener accepts peers and wraps them as Links.
type Listener struct {
	ln        net.Listener
	sendMeter *Meter
	recvMeter *Meter
}

// Listen starts a TCP listener on addr (e.g. "127.0.0.1:0").
func Listen(addr string, sendMeter, recvMeter *Meter) (*Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &Listener{ln: ln, sendMeter: sendMeter, recvMeter: recvMeter}, nil
}

// Addr returns the bound address.
func (l *Listener) Addr() string { return l.ln.Addr().String() }

// Accept waits for the next peer.
func (l *Listener) Accept() (Link, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return NewTCPLink(conn, l.sendMeter, l.recvMeter), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.ln.Close() }

// frameBuf wraps the send buffer in a pointer so pool round-trips do not
// themselves allocate (a bare []byte would be boxed on every Put).
type frameBuf struct{ b []byte }

// framePool recycles frame encode buffers across all TCP links in the
// process: the batch pipeline sends one frame per round per station, and
// without reuse every frame costs a fresh header+payload copy allocation.
var framePool = sync.Pool{New: func() any { return new(frameBuf) }}

func (l *tcpLink) Send(m wire.Message) error {
	fb := framePool.Get().(*frameBuf)
	frame := m.AppendFrame(fb.b[:0])
	n := len(frame)
	l.sendMu.Lock()
	_, err := l.conn.Write(frame)
	l.sendMu.Unlock()
	fb.b = frame[:0]
	framePool.Put(fb)
	if err != nil {
		return fmt.Errorf("transport: send: %w", err)
	}
	l.sendMeter.Add(n)
	return nil
}

func (l *tcpLink) Recv() (wire.Message, error) {
	m, err := wire.ReadMessage(l.r)
	if err != nil {
		return wire.Message{}, fmt.Errorf("transport: recv: %w", err)
	}
	l.recvMeter.Add(m.EncodedSize())
	return m, nil
}

func (l *tcpLink) Close() error {
	l.closeOnce.Do(func() { l.closeErr = l.conn.Close() })
	return l.closeErr
}
