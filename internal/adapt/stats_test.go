// Statistical property tests for the adaptive filter stack: at three value
// skew levels, a seeded traffic sample is profiled, a plan derived, and the
// resulting digest measured against its analytic Daisy-style bound — false
// routes stay under the bound, recall stays perfect, the per-group bit
// arrays fill like ideal Bloom filters (chi-squared on word popcounts), and
// the adaptive digest beats the static one at exactly equal memory.
package adapt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

const (
	statsLength    = 8
	statsResidents = 64
	statsQueries   = 10000
	statsDomain    = 3000 // attribute values draw from [1, statsDomain]
	statsEps       = 3    // scaled tolerance: band width 2·eps·(g+1)+1
	statsWideEps   = 16   // wide-tolerance mix that engages quantization
)

// statsSkew is one tested traffic shape: a seeded value distribution and the
// mixed per-query sample counts that skew per-position probe frequency.
type statsSkew struct {
	name    string
	zipfS   float64 // 0 = uniform
	samples []int
	seeds   uint64 // digest pairs aggregated by the beats-static comparison
}

// Most queries sample few positions (SampleIndexes nests the sparse sets
// inside the dense ones), so per-position probe frequency is heavily skewed
// — the regime the Daisy-style solver targets. The heavier the value skew,
// the fewer distinct keys the empty bands probe, so heavier skews need more
// aggregated digest pairs for the same statistical power.
var statsSkews = []statsSkew{
	{name: "uniform", zipfS: 0, samples: []int{2, 2, 2, 3, 3, 8}, seeds: 12},
	{name: "zipf1.2", zipfS: 1.2, samples: []int{2, 2, 2, 3, 3, 8}, seeds: 12},
	{name: "zipf2.0", zipfS: 2.0, samples: []int{2, 2, 2, 4, 8}, seeds: 150},
}

// drawValue samples one attribute value under the skew; values stay in
// [1, statsDomain] so no drawn pattern can sum to zero (an invalid query).
func (sk statsSkew) drawValue(r *rand.Rand, z *rand.Zipf) int64 {
	if z == nil {
		return 1 + r.Int63n(statsDomain)
	}
	return 1 + int64(z.Uint64())
}

func (sk statsSkew) newZipf(r *rand.Rand) *rand.Zipf {
	if sk.zipfS == 0 {
		return nil
	}
	return rand.NewZipf(r, sk.zipfS, 1, statsDomain-1)
}

func (sk statsSkew) drawPattern(r *rand.Rand, z *rand.Zipf) pattern.Pattern {
	p := make(pattern.Pattern, statsLength)
	for i := range p {
		p[i] = sk.drawValue(r, z)
	}
	return p
}

// statsFixture is one skew level's complete world: residents, their digest
// ground truth, the profiled query sample, and both digests at equal bits.
type statsFixture struct {
	locals   []pattern.Pattern
	accs     []pattern.Pattern // residents' accumulated (prefix-sum) values
	probes   []index.Probe     // the query sample
	queries  []pattern.Pattern
	snapshot Snapshot
	plan     *index.Plan
	adaptive *index.Summary
	static_  *index.Summary
}

// statsCache memoizes fixtures per (skew, eps): the builds are deterministic
// and several tests share them, so pay for each world once.
var statsCache = map[string]*statsFixture{}

func buildStatsFixture(t *testing.T, sk statsSkew, eps int64) *statsFixture {
	t.Helper()
	cacheKey := fmt.Sprintf("%s/%d", sk.name, eps)
	if fx, ok := statsCache[cacheKey]; ok {
		return fx
	}
	r := rand.New(rand.NewSource(0x5eed + int64(len(sk.name))))
	z := sk.newZipf(r)

	fx := &statsFixture{}
	for i := 0; i < statsResidents; i++ {
		p := sk.drawPattern(r, z)
		fx.locals = append(fx.locals, p)
		fx.accs = append(fx.accs, p.Accumulate())
	}

	// The pre-rollout fleet digest: profiling runs against the static
	// summaries the coordinator already holds, so emptiness feedback (bands
	// no digest admits) is available before any plan exists.
	var err error
	fx.static_, err = index.Build(statsLength, fx.locals)
	if err != nil {
		t.Fatal(err)
	}

	prof := NewProfiler(statsLength, 1<<20) // window larger than the sample: no decay
	for i := 0; i < statsQueries; i++ {
		q := sk.drawPattern(r, z)
		probe, err := index.NewProbe(
			core.Query{ID: core.QueryID(i + 1), Locals: []pattern.Pattern{q}},
			sk.samples[i%len(sk.samples)], eps)
		if err != nil {
			t.Fatal(err)
		}
		if !probe.Selective() {
			t.Fatalf("query %d unselective; shrink the fixture's eps", i)
		}
		prof.Observe(probe)
		probe.EachBand(func(pos int, lo, hi int64) {
			if !fx.static_.BandAdmit(pos, lo, hi) {
				prof.ObserveMiss(pos, lo, hi)
			}
		})
		fx.probes = append(fx.probes, probe)
		fx.queries = append(fx.queries, q)
	}
	fx.snapshot = prof.Snapshot()

	plan, err := Derive(fx.snapshot, statsResidents, 0xD1A7, 1)
	if err != nil {
		t.Fatal(err)
	}
	fx.plan = plan
	fx.adaptive, err = index.BuildAdaptive(plan, statsLength, fx.locals)
	if err != nil {
		t.Fatal(err)
	}
	if fx.adaptive.Bits() != fx.static_.Bits() {
		t.Fatalf("unequal memory: adaptive %d bits, static %d", fx.adaptive.Bits(), fx.static_.Bits())
	}
	statsCache[cacheKey] = fx
	return fx
}

// trueStatic reports whether some resident truly lies in every band of some
// combination — the exact (filter-free) admission decision.
func (fx *statsFixture) trueStatic(probe index.Probe) bool {
	return fx.trueAdmit(probe, func(pos int, lo, hi int64) bool {
		for _, acc := range fx.accs {
			if acc[pos] >= lo && acc[pos] <= hi {
				return true
			}
		}
		return false
	})
}

// trueQuantized is the same decision at the plan's quantized resolution —
// the exact content of an ideal adaptive digest, isolating Bloom false
// positives from deliberate quantization over-admission.
func (fx *statsFixture) trueQuantized(probe index.Probe) bool {
	return fx.trueAdmit(probe, func(pos int, lo, hi int64) bool {
		q := fx.plan.Groups[pos].Quantum
		qlo, qhi := index.FloorDiv(lo, q), index.FloorDiv(hi, q)
		for _, acc := range fx.accs {
			if b := index.FloorDiv(acc[pos], q); b >= qlo && b <= qhi {
				return true
			}
		}
		return false
	})
}

// trueAdmit replays Admits' any-combo/every-band structure against a ground
// truth band predicate. Single-local queries have exactly one combination,
// so collecting bands in order and requiring all of them is exact.
func (fx *statsFixture) trueAdmit(probe index.Probe, bandTrue func(pos int, lo, hi int64) bool) bool {
	all := true
	probe.EachBand(func(pos int, lo, hi int64) {
		if !bandTrue(pos, lo, hi) {
			all = false
		}
	})
	return all
}

// TestStatsFalseRouteWithinBound: at every skew, the measured false-route
// rate of the adaptive digest (admitted but not truly present at quantized
// resolution) stays under the analytic Daisy bound, and measured recall on
// quantized-true queries is exactly 1.
func TestStatsFalseRouteWithinBound(t *testing.T) {
	for _, sk := range statsSkews {
		sk := sk
		t.Run(sk.name, func(t *testing.T) {
			fx := buildStatsFixture(t, sk, statsEps)
			bound, err := PlanFalseRouteBound(fx.plan, fx.snapshot, statsResidents, fx.adaptive.Bits())
			if err != nil {
				t.Fatal(err)
			}
			falseRoutes, trueAdmits, misses := 0, 0, 0
			for _, probe := range fx.probes {
				admitted := fx.adaptive.Admits(probe)
				truth := fx.trueQuantized(probe)
				switch {
				case truth && !admitted:
					misses++
				case truth:
					trueAdmits++
				case admitted:
					falseRoutes++
				}
			}
			if misses != 0 {
				t.Fatalf("%d quantized-true queries missed: digest recall broken", misses)
			}
			rate := float64(falseRoutes) / float64(statsQueries)
			// The bound is on expected false band admissions per query; by
			// the union bound it dominates the false-route probability. 1.5x
			// plus an additive floor absorbs sampling noise at this N.
			if limit := bound*1.5 + 0.02; rate > limit {
				t.Fatalf("measured false-route rate %.4f exceeds analytic bound %.4f (limit %.4f)", rate, bound, limit)
			}
			t.Logf("%s: false-route %.4f (bound %.4f), true admits %d/%d", sk.name, rate, bound, trueAdmits, statsQueries)
		})
	}
}

// TestStatsRecallPerfect: every resident's own pattern is admitted by both
// digests at every tested sample count — recall 1.0, the non-negotiable
// half of the routing contract.
func TestStatsRecallPerfect(t *testing.T) {
	for _, sk := range statsSkews {
		sk := sk
		t.Run(sk.name, func(t *testing.T) {
			fx := buildStatsFixture(t, sk, statsEps)
			for qi, local := range fx.locals {
				for _, samples := range sk.samples {
					probe, err := index.NewProbe(
						core.Query{ID: core.QueryID(qi + 1), Locals: []pattern.Pattern{local}},
						samples, statsEps)
					if err != nil {
						t.Fatal(err)
					}
					if !fx.adaptive.Admits(probe) {
						t.Fatalf("adaptive digest missed resident %d at %d samples", qi, samples)
					}
					if !fx.static_.Admits(probe) {
						t.Fatalf("static digest missed resident %d at %d samples", qi, samples)
					}
				}
			}
		})
	}
}

// TestStatsAdaptiveBeatsStatic: at equal memory the adaptive digest must
// falsely admit strictly fewer empty bands than the static one on the
// measured sample at every skew with any error signal, and its analytic
// bound must be strictly lower — the solver's claim, checked end to end.
func TestStatsAdaptiveBeatsStatic(t *testing.T) {
	for _, sk := range statsSkews {
		sk := sk
		t.Run(sk.name, func(t *testing.T) {
			fx := buildStatsFixture(t, sk, statsEps)
			budget := fx.static_.Bits()
			adaptiveBound, err := PlanFalseRouteBound(fx.plan, fx.snapshot, statsResidents, budget)
			if err != nil {
				t.Fatal(err)
			}
			staticBound := StaticFalseRouteBound(fx.snapshot, statsResidents, budget, fx.static_.Hashes())
			if adaptiveBound >= staticBound {
				t.Fatalf("adaptive bound %.5f not below static bound %.5f at equal bits", adaptiveBound, staticBound)
			}
			// A single digest pair has almost no power: under value skew a
			// lone lucky false-positive key recurs across hundreds of band
			// probes, so one pair's event counts are decided by a handful of
			// Bernoulli trials. Aggregate over fixed hash seeds instead —
			// deterministic, while the expectation gap (the solver's
			// allocation makes 2-3x fewer false admissions) dominates
			// per-key luck. Every (query, band) lookup whose band holds no
			// resident is a false-admission trial for both digests, and
			// every query whose bands all pass despite no true match is a
			// false route.
			adaptiveBandFalse, staticBandFalse, emptyBands := 0, 0, 0
			adaptiveFalse, staticFalse := 0, 0
			for seed := uint64(0); seed < sk.seeds; seed++ {
				plan := fx.plan.Clone()
				plan.Seed = 0x5eed0000 + seed
				adaptive, err := index.BuildAdaptive(plan, statsLength, fx.locals)
				if err != nil {
					t.Fatal(err)
				}
				static_, err := index.New(statsLength, statsResidents, 0, plan.Seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, local := range fx.locals {
					if err := static_.Add(local); err != nil {
						t.Fatal(err)
					}
				}
				if adaptive.Bits() != static_.Bits() {
					t.Fatalf("unequal memory at seed %d: adaptive %d bits, static %d", seed, adaptive.Bits(), static_.Bits())
				}
				for _, probe := range fx.probes {
					probe.EachBand(func(pos int, lo, hi int64) {
						for _, acc := range fx.accs {
							if acc[pos] >= lo && acc[pos] <= hi {
								return // truly occupied: both digests must admit
							}
						}
						emptyBands++
						if adaptive.BandAdmit(pos, lo, hi) {
							adaptiveBandFalse++
						}
						if static_.BandAdmit(pos, lo, hi) {
							staticBandFalse++
						}
					})
					if fx.trueStatic(probe) {
						continue // a true admit for both; not a routing error
					}
					if adaptive.Admits(probe) {
						adaptiveFalse++
					}
					if static_.Admits(probe) {
						staticFalse++
					}
				}
			}
			// When the static digests make no errors at all on a skew there
			// is no signal to strictly beat — adaptive must then be
			// error-free too.
			if staticBandFalse > 0 && adaptiveBandFalse >= staticBandFalse {
				t.Fatalf("adaptive falsely admits %d of %d empty bands, static %d — no strict win at equal bits",
					adaptiveBandFalse, emptyBands, staticBandFalse)
			}
			if staticBandFalse == 0 && adaptiveBandFalse > 0 {
				t.Fatalf("adaptive falsely admits %d empty bands where static admits none", adaptiveBandFalse)
			}
			if adaptiveFalse > staticFalse {
				t.Fatalf("adaptive false-routes %d queries, static %d — adaptivity regressed routing", adaptiveFalse, staticFalse)
			}
			t.Logf("%s: empty-band FPs %d vs %d of %d; false routes %d vs %d; bounds %.5f vs %.5f",
				sk.name, adaptiveBandFalse, staticBandFalse, emptyBands, adaptiveFalse, staticFalse, adaptiveBound, staticBound)
		})
	}
}

// TestStatsBitUniformity: each adaptive group's bit region fills like an
// ideal Bloom filter — measured fill matches the analytic expectation from
// its exact distinct-key count, and a chi-squared test over per-word
// popcounts in the largest group finds no clustering (the hash family
// spreads keys evenly across the region).
func TestStatsBitUniformity(t *testing.T) {
	for _, sk := range statsSkews {
		sk := sk
		t.Run(sk.name, func(t *testing.T) {
			fx := buildStatsFixture(t, sk, statsEps)
			geoms := fx.adaptive.Geometry()
			words := fx.adaptive.Words()

			// Exact distinct keys per group from the residents.
			distinct := make([]int, statsLength)
			for g := 0; g < statsLength; g++ {
				q := fx.plan.Groups[g].Quantum
				seen := map[int64]bool{}
				for _, acc := range fx.accs {
					seen[index.FloorDiv(acc[g], q)] = true
				}
				distinct[g] = len(seen)
			}

			var off uint64
			largest, largestWords := -1, 0
			offsets := make([]uint64, statsLength)
			for g, geom := range geoms {
				offsets[g] = off
				gw := int(geom.Bits / 64)
				ones := 0
				for w := 0; w < gw; w++ {
					ones += popcount(words[int(off/64)+w])
				}
				fill := float64(ones) / float64(geom.Bits)
				expect := 1 - math.Pow(1-1/float64(geom.Bits), float64(int(geom.Hashes)*distinct[g]))
				if diff := math.Abs(fill - expect); diff > 0.08 {
					t.Errorf("group %d fill %.4f vs expected %.4f (Δ %.4f): hashing not uniform", g, fill, expect, diff)
				}
				if gw > largestWords {
					largest, largestWords = g, gw
				}
				off += geom.Bits
			}

			// Chi-squared over per-word popcounts of the largest group:
			// under uniform hashing each word's popcount is Bin(64, fill).
			geom := geoms[largest]
			gw := int(geom.Bits / 64)
			base := int(offsets[largest] / 64)
			var ones float64
			counts := make([]float64, gw)
			for w := 0; w < gw; w++ {
				counts[w] = float64(popcount(words[base+w]))
				ones += counts[w]
			}
			fill := ones / float64(geom.Bits)
			if fill <= 0 || fill >= 1 {
				t.Skipf("degenerate fill %.3f in largest group", fill)
			}
			mean := 64 * fill
			variance := 64 * fill * (1 - fill)
			var chi2 float64
			for _, c := range counts {
				chi2 += (c - mean) * (c - mean) / variance
			}
			// chi2 ~ χ²(gw) under uniformity; mean gw, sd sqrt(2·gw). Five
			// sigma keeps the seeded run deterministic and still catches a
			// clustered hash family by miles.
			limit := float64(gw) + 5*math.Sqrt(2*float64(gw))
			if chi2 > limit {
				t.Fatalf("chi-squared %.1f over %d words exceeds %.1f: bits cluster", chi2, gw, limit)
			}
			t.Logf("%s: largest group %d: fill %.4f, chi2 %.1f (limit %.1f)", sk.name, largest, fill, chi2, limit)
		})
	}
}

func popcount(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

// TestStatsNarrowBandsStayExact: at the narrow default tolerance the solver
// must refuse to quantize — coarsening narrow bands can only over-admit
// against the static table's exact resolution.
func TestStatsNarrowBandsStayExact(t *testing.T) {
	for _, sk := range statsSkews {
		sk := sk
		t.Run(sk.name, func(t *testing.T) {
			fx := buildStatsFixture(t, sk, statsEps)
			for g, grp := range fx.plan.Groups {
				if grp.Quantum != 1 {
					t.Errorf("group %d quantized to %d on narrow traffic (mean width %.1f)",
						g, grp.Quantum, fx.snapshot.Volume[g]/fx.snapshot.Probes[g])
				}
			}
		})
	}
}

// TestStatsQuantizedWideBands runs the full pipeline under a wide-tolerance
// mix (eps 16: bands up to 2·16·8+1 values): the solver engages quanta on
// the wide groups, the digest's lookup volume drops severalfold, recall
// stays perfect, and the measured false-route rate still respects the
// analytic bound.
func TestStatsQuantizedWideBands(t *testing.T) {
	sk := statsSkews[0] // uniform values: the worst case for quantization
	fx := buildStatsFixture(t, sk, statsWideEps)

	quantized := 0
	var raw, lookups float64
	for g := 0; g < statsLength; g++ {
		if fx.plan.Groups[g].Quantum > 1 {
			quantized++
		}
		raw += fx.snapshot.Volume[g]
		lookups += lookupVolume(fx.snapshot.Volume[g], fx.snapshot.Probes[g], fx.plan.Groups[g].Quantum)
	}
	if quantized == 0 {
		t.Fatal("wide-band traffic engaged no quantization")
	}
	if lookups*2 > raw {
		t.Fatalf("lookup volume %.0f not meaningfully below raw %.0f", lookups, raw)
	}

	bound, err := PlanFalseRouteBound(fx.plan, fx.snapshot, statsResidents, fx.adaptive.Bits())
	if err != nil {
		t.Fatal(err)
	}
	falseRoutes, misses := 0, 0
	for _, probe := range fx.probes {
		admitted := fx.adaptive.Admits(probe)
		truth := fx.trueQuantized(probe)
		if truth && !admitted {
			misses++
		}
		if !truth && admitted {
			falseRoutes++
		}
	}
	if misses != 0 {
		t.Fatalf("%d quantized-true queries missed under quantization", misses)
	}
	if rate, limit := float64(falseRoutes)/float64(statsQueries), bound*1.5+0.02; rate > limit {
		t.Fatalf("quantized false-route rate %.4f exceeds bound %.4f (limit %.4f)", rate, bound, limit)
	}
	for qi, local := range fx.locals {
		probe, err := index.NewProbe(
			core.Query{ID: core.QueryID(qi + 1), Locals: []pattern.Pattern{local}},
			statsLength, statsWideEps)
		if err != nil {
			t.Fatal(err)
		}
		if !fx.adaptive.Admits(probe) {
			t.Fatalf("quantized digest missed resident %d", qi)
		}
	}
	t.Logf("quantized groups %d/%d, volume %.0f -> %.0f, false-route %d (bound %.4f)",
		quantized, statsLength, raw, lookups, falseRoutes, bound)
}
