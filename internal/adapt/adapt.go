// Package adapt derives traffic-adaptive routing-digest parameters from the
// coordinator's observed query mix — the Daisy-style feedback loop the
// static WBF weight table lacks.
//
// The paper's parameters are tuned for uniform queries, but a live
// coordinator sees the real distribution: which positions a search samples
// (per-search sample counts pick different subsets), how wide each ε band
// is (the scaled tolerance widens bands with the position index), and how
// the query values skew. Daisy Bloom filters (Bercea, Houen & Pagh) show
// that when insert and query frequencies are known, per-element parameters
// chosen from those frequencies minimize the false-positive rate at fixed
// space. Here the "elements" are the digest's position groups: the Profiler
// accumulates sliding-window per-position probe and band-volume counters
// from the search path, and Derive solves for per-group bit budgets, hash
// counts and value quanta under the station's existing memory budget —
// same memory, lower false-route rate.
//
// The output is an index.Plan: relative bit weights (stations resolve them
// against their own static budget), per-group hash counts, and per-group
// quantization steps that implement the per-band ε scaling — positions
// probed with wide bands get coarse quanta, so a band probe costs a bounded
// number of lookups instead of one per value. The plan travels to stations
// over wire v7 (KindParamUpdate) and every failure path — stations below
// v7, a plan that cannot fit, a mid-rollout crash — degrades to the static
// table, never to a mixed or unsound digest.
package adapt

import (
	"fmt"
	"math"
	"sync"

	"dimatch/internal/index"
)

// DefaultWindow is the profiler's sliding-window size in observed queries:
// once a window fills, every counter is halved, so the profile tracks
// roughly the last 2·DefaultWindow queries with exponential age-out.
const DefaultWindow = 4096

// targetProbesPerBand tunes quantization: a quantized group's quantum aims
// to reduce its mean observed band to about this many lookups.
const targetProbesPerBand = 32

// quantizeMinWidth is the mean band width below which a group is never
// quantized. Quantization trades a small deterministic over-admission at
// the band edges for fewer lookups and fewer distinct keys; on narrow bands
// that trade always loses to the static table's exact resolution, so the
// solver only coarsens groups whose bands are genuinely wide.
const quantizeMinWidth = 64

// missSmoothing blends a sliver of the raw probe volume into the
// miss-weighted objective so groups with no observed empty bands yet still
// keep a non-degenerate bit share when emptiness feedback is available.
const missSmoothing = 0.01

// ErrNoTraffic reports a Derive call before the profiler has observed any
// selective probes; the caller must stay on the static table.
var ErrNoTraffic = fmt.Errorf("adapt: no traffic observed yet")

// Profiler accumulates the coordinator's observed query-attribute frequency
// distribution: per pattern position, how many ε bands probed it and their
// total value volume. All methods are safe for concurrent use — searches
// feed it while rollouts snapshot it.
type Profiler struct {
	mu         sync.Mutex
	length     int       // dimatch:guardedby mu
	window     uint64    // dimatch:guardedby mu
	observed   uint64    // dimatch:guardedby mu — queries since the last decay
	queries    float64   // dimatch:guardedby mu — decayed query count
	probes     []float64 // dimatch:guardedby mu — decayed per-position band count
	volume     []float64 // dimatch:guardedby mu — decayed per-position band value volume
	misses     []float64 // dimatch:guardedby mu — decayed per-position empty-band count
	missVolume []float64 // dimatch:guardedby mu — decayed per-position empty-band value volume
}

// NewProfiler returns a profiler for patterns of the given length. window
// is the decay window in queries (DefaultWindow when <= 0).
func NewProfiler(length, window int) *Profiler {
	if length <= 0 {
		length = 1
	}
	if window <= 0 {
		window = DefaultWindow
	}
	return &Profiler{
		length:     length,
		window:     uint64(window),
		probes:     make([]float64, length),
		volume:     make([]float64, length),
		misses:     make([]float64, length),
		missVolume: make([]float64, length),
	}
}

// Length returns the pattern length the profiler covers.
func (p *Profiler) Length() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.length
}

// Observe folds one query's admission probe into the window. Unselective
// probes carry no bands and only advance the query clock.
func (p *Profiler) Observe(probe index.Probe) {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Pinned under mu for the EachBand closure; the slices are mutated in
	// place, still under the same critical section.
	length, probes, volume := p.length, p.probes, p.volume
	probe.EachBand(func(pos int, lo, hi int64) {
		if pos < 0 || pos >= length {
			return
		}
		probes[pos]++
		volume[pos] += float64(hi-lo) + 1
	})
	p.queries++
	p.observed++
	if p.observed >= p.window {
		p.observed = 0
		p.queries /= 2
		for i := range p.probes {
			p.probes[i] /= 2
			p.volume[i] /= 2
			p.misses[i] /= 2
			p.missVolume[i] /= 2
		}
	}
}

// ObserveMiss folds one empty band into the window: a band at position pos
// covering [lo, hi] that no station digest admitted. False admissions can
// only happen on empty bands, so this is the emptiness feedback that lets
// the solver weight bits by where errors are possible rather than by raw
// probe volume. The coordinator derives it from the digests it already
// holds — a band admitted by no station is, to within the digests' own
// false-positive rate, empty fleet-wide.
func (p *Profiler) ObserveMiss(pos int, lo, hi int64) {
	if pos < 0 || hi < lo {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pos >= p.length {
		return
	}
	p.misses[pos]++
	p.missVolume[pos] += float64(hi-lo) + 1
}

// Snapshot is an immutable copy of the profiler's window, the solver's
// input.
type Snapshot struct {
	// Length is the pattern length.
	Length int
	// Queries is the (decayed) number of queries observed.
	Queries float64
	// Probes[g] is the (decayed) number of ε bands probed at position g.
	Probes []float64
	// Volume[g] is the (decayed) total band width probed at position g —
	// the number of digest lookups the static table would spend there.
	Volume []float64
	// Misses[g] is the (decayed) number of observed empty bands at position
	// g (bands no station digest admitted), and MissVolume[g] their total
	// width. Optional: when all-zero the solver falls back to weighting by
	// raw probe volume.
	Misses     []float64
	MissVolume []float64
}

// Snapshot returns a copy of the current window.
func (p *Profiler) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Snapshot{
		Length:     p.length,
		Queries:    p.queries,
		Probes:     append([]float64(nil), p.probes...),
		Volume:     append([]float64(nil), p.volume...),
		Misses:     append([]float64(nil), p.misses...),
		MissVolume: append([]float64(nil), p.missVolume...),
	}
}

// Reset clears the window — the operator's "freeze and restart profiling"
// control (docs/OPERATIONS.md).
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.observed = 0
	p.queries = 0
	for i := range p.probes {
		p.probes[i] = 0
		p.volume[i] = 0
		p.misses[i] = 0
		p.missVolume[i] = 0
	}
}

// Derive solves for an adaptive parameter plan from a traffic snapshot: the
// Daisy-style allocation that minimizes the expected number of false band
// admissions per query at fixed total space.
//
// residents is the reference station size the solver optimizes for (the
// fleet's mean; each station re-scales the weights against its own budget),
// seed the digest key-space seed, and epoch the parameter epoch to stamp.
// The objective is sum_g weight_g · fp(m_g, k_g, n_g), where weight_g is
// the group's quantized lookup volume exposed to false admission (the
// observed empty-band volume when emptiness feedback is present, the full
// probe volume otherwise), n_g its expected distinct cells, and fp the
// analytic Bloom false-positive rate; bits move greedily to the group with
// the largest marginal reduction, and each group's hash count is re-fit to
// its budget as it grows. Groups the window never probed keep the one-word
// floor — they cost nothing to queries that never look there.
func Derive(s Snapshot, residents int, seed, epoch uint64) (*index.Plan, error) {
	if s.Length <= 0 || len(s.Probes) != s.Length || len(s.Volume) != s.Length {
		return nil, fmt.Errorf("adapt: malformed snapshot (length %d, %d probe counters, %d volume counters)",
			s.Length, len(s.Probes), len(s.Volume))
	}
	if (s.Misses != nil && len(s.Misses) != s.Length) || (s.MissVolume != nil && len(s.MissVolume) != s.Length) {
		return nil, fmt.Errorf("adapt: malformed snapshot (length %d, %d miss counters, %d miss-volume counters)",
			s.Length, len(s.Misses), len(s.MissVolume))
	}
	var bands float64
	for _, c := range s.Probes {
		bands += c
	}
	if s.Queries <= 0 || bands <= 0 {
		return nil, ErrNoTraffic
	}
	if residents < 1 {
		residents = 1
	}

	// Quantization first: a group whose mean observed band is wide gets a
	// quantum targeting its mean width; narrow bands keep full resolution,
	// where the static table is already exact and coarsening only
	// over-admits.
	quanta := make([]int64, s.Length)
	qvolume := make([]float64, s.Length) // per-query fp-exposed lookup weight
	for g := range quanta {
		quanta[g] = 1
		if s.Probes[g] > 0 {
			mean := s.Volume[g] / s.Probes[g]
			if mean >= quantizeMinWidth {
				q := int64(math.Round(mean / targetProbesPerBand))
				if q > index.MaxPlanQuantum {
					q = index.MaxPlanQuantum
				}
				if q > 1 {
					quanta[g] = q
				}
			}
			qvolume[g] = s.fpLookupWeight(g, quanta[g])
		}
	}

	// The reference budget: what the static table would spend on a station
	// of this size. Allocation is in 64-bit words, one-word floor per
	// group; the greedy loop moves the spare words to whichever group's
	// weighted false-positive mass drops the most.
	budget := index.StaticBudgetBits(s.Length, residents)
	words := budget / 64
	if words < uint64(s.Length) {
		return nil, fmt.Errorf("adapt: budget %d bits cannot cover %d groups", budget, s.Length)
	}
	alloc := make([]uint64, s.Length)
	for g := range alloc {
		alloc[g] = 1
	}
	spare := words - uint64(s.Length)
	// Distinct cells per group: at most one per resident, fewer once
	// quantization merges neighbors — bounded by residents, which is the
	// conservative (pessimistic) side for fp estimation.
	n := uint64(residents)
	cost := func(g int, w uint64) float64 {
		return qvolume[g] * groupFP(w*64, n)
	}
	// Move spare words in chunks so huge budgets stay cheap to solve; the
	// chunk is at least one word and at most 1/128 of the spare pool.
	chunk := spare / 128
	if chunk == 0 {
		chunk = 1
	}
	for spare > 0 {
		step := chunk
		if step > spare {
			step = spare
		}
		best, bestGain := -1, 0.0
		for g := range alloc {
			gain := cost(g, alloc[g]) - cost(g, alloc[g]+step)
			if gain > bestGain {
				best, bestGain = g, gain
			}
		}
		if best < 0 {
			// No group benefits (all volumes zero or fp already ~0): spread
			// the remainder evenly to keep the budget fully spent.
			for g := range alloc {
				share := spare / uint64(len(alloc)-g)
				alloc[g] += share
				spare -= share
			}
			break
		}
		alloc[best] += step
		spare -= step
	}

	groups := make([]index.PlanGroup, s.Length)
	for g := range groups {
		w := alloc[g]
		if w > index.MaxPlanWeight {
			// Renormalizing would lose at most a word of precision per
			// group; in practice budgets stay far below this.
			w = index.MaxPlanWeight
		}
		groups[g] = index.PlanGroup{
			Weight:  uint32(w),
			Hashes:  fitHashes(w*64, n),
			Quantum: quanta[g],
		}
	}
	plan := &index.Plan{Epoch: epoch, Seed: seed, Length: s.Length, Groups: groups}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("adapt: derived plan invalid: %w", err)
	}
	return plan, nil
}

// fitHashes returns the optimal hash count for m bits holding n elements,
// clamped to the plan bounds.
func fitHashes(m, n uint64) uint8 {
	if n == 0 {
		return 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > index.MaxPlanHashes {
		k = index.MaxPlanHashes
	}
	return uint8(k)
}

// groupFP is the analytic false-positive rate of an m-bit group holding n
// cells at its fitted hash count.
func groupFP(m, n uint64) float64 {
	return index.GeomFPRate(index.GroupGeom{Bits: m, Hashes: fitHashes(m, n), Quantum: 1}, n)
}

// hasMissData reports whether the snapshot carries emptiness feedback.
func (s Snapshot) hasMissData() bool {
	if len(s.Misses) != s.Length || len(s.MissVolume) != s.Length {
		return false
	}
	for _, m := range s.Misses {
		if m > 0 {
			return true
		}
	}
	return false
}

// fpLookupWeight is the per-query lookup volume at position g that is
// exposed to false admission under quantum q. False admissions only happen
// on empty bands, so with emptiness feedback the weight is the missed
// lookup volume (lightly smoothed with the raw probe volume so unmissed
// groups keep a floor); without feedback every probed lookup is assumed
// exposed.
func (s Snapshot) fpLookupWeight(g int, q int64) float64 {
	if s.Queries <= 0 {
		return 0
	}
	vol, probes := s.Volume[g], s.Probes[g]
	if s.hasMissData() {
		vol = s.MissVolume[g] + missSmoothing*vol
		probes = s.Misses[g] + missSmoothing*probes
	}
	return lookupVolume(vol, probes, q) / s.Queries
}

// PlanFalseRouteBound returns the analytic Daisy-style bound on the
// expected number of false band admissions per query under the plan at a
// station of the given size and budget: sum_g weight_g · fp_g, with the
// same fp-exposed lookup weights the solver optimizes. The statistical test
// harness asserts measured rates stay under it; the bench reports it beside
// the measured figure.
func PlanFalseRouteBound(p *index.Plan, s Snapshot, residents int, budgetBits uint64) (float64, error) {
	geoms, err := index.PartitionBudget(p, budgetBits)
	if err != nil {
		return 0, err
	}
	if s.Queries <= 0 {
		return 0, ErrNoTraffic
	}
	n := uint64(residents)
	var bound float64
	for g, geom := range geoms {
		if g >= len(s.Volume) {
			break
		}
		bound += s.fpLookupWeight(g, geom.Quantum) * index.GeomFPRate(geom, n)
	}
	return bound, nil
}

// lookupVolume is the digest lookup cost of the observed band volume at a
// quantum: exact at q=1, and at most w/q+1 lookups per band of width w when
// quantized.
func lookupVolume(volume, probes float64, q int64) float64 {
	if q <= 1 {
		return volume
	}
	return volume/float64(q) + probes
}

// StaticFalseRouteBound is the same bound for the static table at the same
// budget: every fp-exposed lookup pays the single filter's fp at
// residents·length insertions, and bands are probed at full resolution.
func StaticFalseRouteBound(s Snapshot, residents int, budgetBits uint64, hashes int) float64 {
	if s.Queries <= 0 {
		return 0
	}
	n := uint64(residents) * uint64(s.Length)
	fp := index.GeomFPRate(index.GroupGeom{Bits: budgetBits, Hashes: uint8(hashes), Quantum: 1}, n)
	var bound float64
	for g := range s.Volume {
		bound += s.fpLookupWeight(g, 1) * fp
	}
	return bound
}
