package adapt

import (
	"testing"

	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/pattern"
)

func probeFor(t *testing.T, p pattern.Pattern, samples int, eps int64) index.Probe {
	t.Helper()
	q := core.Query{ID: 1, Locals: []pattern.Pattern{p}}
	probe, err := index.NewProbe(q, samples, eps)
	if err != nil {
		t.Fatal(err)
	}
	return probe
}

func TestProfilerObserve(t *testing.T) {
	p := NewProfiler(4, 0)
	if p.Length() != 4 {
		t.Fatalf("length %d", p.Length())
	}
	probe := probeFor(t, pattern.Pattern{5, 6, 7, 8}, 4, 1)
	var wantProbes, wantVolume float64
	probe.EachBand(func(pos int, lo, hi int64) {
		wantProbes++
		wantVolume += float64(hi-lo) + 1
	})
	if wantProbes == 0 {
		t.Fatal("fixture probe has no bands")
	}
	p.Observe(probe)
	p.Observe(probe)
	s := p.Snapshot()
	if s.Queries != 2 {
		t.Fatalf("queries %v", s.Queries)
	}
	var gotProbes, gotVolume float64
	for g := 0; g < s.Length; g++ {
		gotProbes += s.Probes[g]
		gotVolume += s.Volume[g]
	}
	if gotProbes != 2*wantProbes || gotVolume != 2*wantVolume {
		t.Fatalf("observed %v bands / %v volume, want %v / %v", gotProbes, gotVolume, 2*wantProbes, 2*wantVolume)
	}

	// Snapshot must be a copy: mutating it cannot touch the profiler.
	s.Probes[0] += 100
	if got := p.Snapshot(); got.Probes[0] == s.Probes[0] {
		t.Fatal("snapshot aliases profiler state")
	}
}

func TestProfilerObserveMiss(t *testing.T) {
	p := NewProfiler(4, 0)
	p.ObserveMiss(1, 10, 14)
	p.ObserveMiss(1, 20, 20)
	p.ObserveMiss(-1, 0, 0) // out of range: ignored
	p.ObserveMiss(9, 0, 0)  // out of range: ignored
	p.ObserveMiss(2, 5, 4)  // inverted band: ignored
	s := p.Snapshot()
	if s.Misses[1] != 2 || s.MissVolume[1] != 6 {
		t.Fatalf("misses %v volume %v, want 2 / 6", s.Misses[1], s.MissVolume[1])
	}
	for g := 0; g < 4; g++ {
		if g != 1 && (s.Misses[g] != 0 || s.MissVolume[g] != 0) {
			t.Fatalf("stray miss residue at position %d: %+v", g, s)
		}
	}
}

func TestProfilerDecayAndReset(t *testing.T) {
	p := NewProfiler(4, 4)
	probe := probeFor(t, pattern.Pattern{5, 6, 7, 8}, 4, 0)
	p.ObserveMiss(0, 1, 4)
	for i := 0; i < 4; i++ {
		p.Observe(probe)
	}
	// The 4th observation fills the window: every counter halves.
	s := p.Snapshot()
	if s.Queries != 2 {
		t.Fatalf("after decay queries = %v, want 2", s.Queries)
	}
	if s.Misses[0] != 0.5 || s.MissVolume[0] != 2 {
		t.Fatalf("miss counters not decayed: %v / %v", s.Misses[0], s.MissVolume[0])
	}
	p.Reset()
	s = p.Snapshot()
	if s.Queries != 0 || s.Probes[0] != 0 || s.Volume[0] != 0 || s.Misses[0] != 0 || s.MissVolume[0] != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
}

func TestDeriveNoTraffic(t *testing.T) {
	p := NewProfiler(4, 0)
	if _, err := Derive(p.Snapshot(), 10, 1, 1); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
	// Unselective probes advance the clock but carry no bands.
	if _, err := Derive(Snapshot{Length: 4, Queries: 5, Probes: make([]float64, 4), Volume: make([]float64, 4)}, 10, 1, 1); err != ErrNoTraffic {
		t.Fatalf("err = %v, want ErrNoTraffic", err)
	}
}

func TestDeriveMalformedSnapshot(t *testing.T) {
	if _, err := Derive(Snapshot{Length: 3, Queries: 1, Probes: []float64{1}, Volume: []float64{1, 1, 1}}, 10, 1, 1); err == nil {
		t.Fatal("mismatched counter lengths accepted")
	}
	if _, err := Derive(Snapshot{}, 10, 1, 1); err == nil {
		t.Fatal("zero-length snapshot accepted")
	}
	bad := syntheticSnapshot(4)
	bad.Misses = []float64{1}
	bad.MissVolume = []float64{1, 1, 1, 1}
	if _, err := Derive(bad, 10, 1, 1); err == nil {
		t.Fatal("mismatched miss counter lengths accepted")
	}
}

// TestDeriveFollowsMisses: with emptiness feedback present, bits chase the
// observed empty-band volume, not the raw probe volume — a cold position
// whose probes are almost always empty must out-rank a hot position whose
// probes always hit.
func TestDeriveFollowsMisses(t *testing.T) {
	length := 4
	s := Snapshot{
		Length:     length,
		Queries:    1000,
		Probes:     []float64{100, 5000, 100, 100},
		Volume:     []float64{100, 5000, 100, 100},
		Misses:     make([]float64, length),
		MissVolume: make([]float64, length),
	}
	// Position 1 is hot but its bands always hit residents; position 2 is
	// cold but every one of its probes lands on an empty band.
	s.Misses[2] = 100
	s.MissVolume[2] = 100
	plan, err := Derive(s, 64, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Groups[2].Weight <= plan.Groups[1].Weight {
		t.Fatalf("all-miss position weight %d not above never-miss hot position weight %d",
			plan.Groups[2].Weight, plan.Groups[1].Weight)
	}
}

func syntheticSnapshot(length int) Snapshot {
	s := Snapshot{
		Length:  length,
		Queries: 1000,
		Probes:  make([]float64, length),
		Volume:  make([]float64, length),
	}
	for g := range s.Probes {
		s.Probes[g] = float64(1000 * (g + 1))
		s.Volume[g] = s.Probes[g] * float64(1+2*g) // mean band width grows with g
	}
	return s
}

// TestDeriveValidDeterministicExact: the solver returns a valid plan, is a
// pure function of its inputs, and its weights resolve to exactly the
// static budget.
func TestDeriveValidDeterministicExact(t *testing.T) {
	s := syntheticSnapshot(8)
	const residents = 64
	plan, err := Derive(s, residents, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 5 || plan.Seed != 99 || plan.Length != 8 {
		t.Fatalf("plan header wrong: %+v", plan)
	}
	again, err := Derive(s, residents, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Equal(again) {
		t.Fatal("Derive is not deterministic")
	}
	budget := index.StaticBudgetBits(8, residents)
	geoms, err := index.PartitionBudget(plan, budget)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, g := range geoms {
		total += g.Bits
	}
	if total != budget {
		t.Fatalf("plan spends %d of %d budget bits", total, budget)
	}
}

// TestDeriveFollowsSkew: a group carrying almost all the probe volume must
// receive the largest bit region.
func TestDeriveFollowsSkew(t *testing.T) {
	length := 6
	s := Snapshot{
		Length:  length,
		Queries: 1000,
		Probes:  make([]float64, length),
		Volume:  make([]float64, length),
	}
	for g := range s.Probes {
		s.Probes[g] = 10
		s.Volume[g] = 10
	}
	s.Probes[2] = 5000
	s.Volume[2] = 5000 // narrow bands: quantum stays 1, all volume is real lookups
	plan, err := Derive(s, 64, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for g, grp := range plan.Groups {
		if g != 2 && grp.Weight >= plan.Groups[2].Weight {
			t.Fatalf("cold group %d weight %d >= hot group weight %d", g, grp.Weight, plan.Groups[2].Weight)
		}
	}
}

// TestDeriveQuantization: bands at or above quantizeMinWidth coarsen toward
// targetProbesPerBand lookups; narrower bands keep full resolution — even
// moderately wide ones, where coarsening only over-admits.
func TestDeriveQuantization(t *testing.T) {
	length := 3
	s := Snapshot{
		Length:  length,
		Queries: 100,
		Probes:  []float64{100, 100, 100},
		Volume:  []float64{100, 100 * 40, 100 * 96}, // mean widths 1, 40, 96
	}
	plan, err := Derive(s, 32, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q := plan.Groups[0].Quantum; q != 1 {
		t.Fatalf("narrow group quantized to %d", q)
	}
	if q := plan.Groups[1].Quantum; q != 1 {
		t.Fatalf("sub-threshold group (width 40 < %d) quantized to %d", quantizeMinWidth, q)
	}
	if q := plan.Groups[2].Quantum; q != 3 {
		t.Fatalf("wide group quantum %d, want 96/%d = 3", q, targetProbesPerBand)
	}
}

// TestBoundsOrdering: on a skewed profile the adaptive analytic bound must
// undercut the static one at the same budget — the solver's whole claim.
func TestBoundsOrdering(t *testing.T) {
	s := syntheticSnapshot(8)
	const residents = 64
	plan, err := Derive(s, residents, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	budget := index.StaticBudgetBits(8, residents)
	adaptiveBound, err := PlanFalseRouteBound(plan, s, residents, budget)
	if err != nil {
		t.Fatal(err)
	}
	staticBound := StaticFalseRouteBound(s, residents, budget, 7)
	if adaptiveBound <= 0 || staticBound <= 0 {
		t.Fatalf("degenerate bounds: adaptive %v static %v", adaptiveBound, staticBound)
	}
	if adaptiveBound >= staticBound {
		t.Fatalf("adaptive bound %v does not beat static %v at equal budget", adaptiveBound, staticBound)
	}
}
