// AllocsPerRun pins for the //dimatch:noalloc functions of this package.
// The noalloc analyzer is the static early warning; these tests are the
// runtime ground truth. cmd/di-lint -allocharness reports any annotated
// function missing from this file.
package bitset

import "testing"

var countSink uint64

func TestNoallocCount(t *testing.T) {
	s := New(1 << 12)
	for i := uint64(0); i < s.Len(); i += 7 {
		s.Set(i)
	}
	if n := testing.AllocsPerRun(100, func() {
		countSink = s.Count()
	}); n != 0 {
		t.Fatalf("(*Set).Count allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocUnionWith(t *testing.T) {
	dst, src := New(1<<12), New(1<<12)
	for i := uint64(0); i < src.Len(); i += 5 {
		src.Set(i)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := dst.UnionWith(src); err != nil {
			panic(err)
		}
	}); n != 0 {
		t.Fatalf("(*Set).UnionWith allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
