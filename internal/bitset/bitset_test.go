package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	s := New(100)
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
	if s.Count() != 0 {
		t.Fatalf("Count() = %d, want 0", s.Count())
	}
	for i := uint64(0); i < 100; i++ {
		if s.Test(i) {
			t.Fatalf("bit %d set in a fresh set", i)
		}
	}
}

func TestSetAndTest(t *testing.T) {
	s := New(130) // spans three words
	indices := []uint64{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range indices {
		s.Set(i)
	}
	for _, i := range indices {
		if !s.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if got := s.Count(); got != uint64(len(indices)) {
		t.Fatalf("Count() = %d, want %d", got, len(indices))
	}
	// Idempotent.
	s.Set(63)
	if got := s.Count(); got != uint64(len(indices)) {
		t.Fatalf("Count() after duplicate Set = %d, want %d", got, len(indices))
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"set":  func() { s.Set(10) },
		"test": func() { s.Test(10) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestFillRatio(t *testing.T) {
	s := New(64)
	if s.FillRatio() != 0 {
		t.Fatalf("FillRatio of empty set = %v", s.FillRatio())
	}
	for i := uint64(0); i < 16; i++ {
		s.Set(i)
	}
	if got := s.FillRatio(); got != 0.25 {
		t.Fatalf("FillRatio = %v, want 0.25", got)
	}
	var empty Set
	if empty.FillRatio() != 0 {
		t.Fatal("FillRatio of zero-length set should be 0")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := New(100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		s.Set(uint64(rng.Intn(100)))
	}
	restored, err := FromWords(s.Words(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(restored) {
		t.Fatal("round-tripped set differs")
	}
}

func TestFromWordsValidation(t *testing.T) {
	tests := []struct {
		name  string
		words []uint64
		n     uint64
	}{
		{name: "too few words", words: []uint64{0}, n: 100},
		{name: "too many words", words: []uint64{0, 0, 0}, n: 100},
		{name: "stray bits past length", words: []uint64{1 << 10}, n: 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromWords(tt.words, tt.n); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestFromWordsCopies(t *testing.T) {
	words := []uint64{0}
	s, err := FromWords(words, 64)
	if err != nil {
		t.Fatal(err)
	}
	words[0] = ^uint64(0) // mutate the caller slice
	if s.Count() != 0 {
		t.Fatal("FromWords did not copy the input slice")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := New(64)
	s.Set(5)
	c := s.Clone()
	c.Set(6)
	if s.Test(6) {
		t.Fatal("mutating clone affected original")
	}
	if !c.Test(5) {
		t.Fatal("clone lost original bit")
	}
}

func TestEqual(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(3)
	if a.Equal(b) {
		t.Fatal("sets with different bits reported equal")
	}
	b.Set(3)
	if !a.Equal(b) {
		t.Fatal("identical sets reported unequal")
	}
	if a.Equal(New(65)) {
		t.Fatal("sets of different length reported equal")
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	b.Set(127)
	if err := a.UnionWith(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test(1) || !a.Test(127) {
		t.Fatal("union missing bits")
	}
	if err := a.UnionWith(New(64)); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestSizeBytes(t *testing.T) {
	if got := New(1).SizeBytes(); got != 8 {
		t.Fatalf("SizeBytes(1 bit) = %d, want 8", got)
	}
	if got := New(64).SizeBytes(); got != 8 {
		t.Fatalf("SizeBytes(64 bits) = %d, want 8", got)
	}
	if got := New(65).SizeBytes(); got != 16 {
		t.Fatalf("SizeBytes(65 bits) = %d, want 16", got)
	}
}

func TestPropertyCountMatchesSetBits(t *testing.T) {
	// Count equals the cardinality of the distinct indices set.
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		distinct := make(map[uint64]bool, len(raw))
		for _, r := range raw {
			i := uint64(r)
			s.Set(i)
			distinct[i] = true
		}
		return s.Count() == uint64(len(distinct))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWordsRoundTrip(t *testing.T) {
	f := func(raw []uint16, lenSeed uint16) bool {
		n := uint64(lenSeed)%(1<<16-1) + 1
		s := New(n)
		for _, r := range raw {
			s.Set(uint64(r) % n)
		}
		restored, err := FromWords(s.Words(), n)
		return err == nil && s.Equal(restored)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnrollTailSizes crosses the 4-wide unroll boundary in UnionWith and
// Count: every length from 1 through 10 words exercises the unrolled body,
// the scalar tail, or both, and must agree with a bit-by-bit reference.
func TestUnrollTailSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for words := 1; words <= 10; words++ {
		n := uint64(words * 64)
		a, b := New(n), New(n)
		ref := map[uint64]bool{}
		for k := 0; k < words*24; k++ {
			i, j := rng.Uint64()%n, rng.Uint64()%n
			a.Set(i)
			b.Set(j)
			ref[i] = true
			ref[j] = true
		}
		if err := a.UnionWith(b); err != nil {
			t.Fatal(err)
		}
		if a.Count() != uint64(len(ref)) {
			t.Fatalf("%d words: Count = %d, want %d", words, a.Count(), len(ref))
		}
		for i := range ref {
			if !a.Test(i) {
				t.Fatalf("%d words: union lost bit %d", words, i)
			}
		}
	}
}

func BenchmarkUnionWith(b *testing.B) {
	dst, src := New(1<<16), New(1<<16)
	for i := uint64(0); i < src.Len(); i += 3 {
		src.Set(i)
	}
	b.SetBytes(int64(src.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dst.UnionWith(src); err != nil {
			b.Fatal(err)
		}
	}
}

var benchCountSink uint64

func BenchmarkCount(b *testing.B) {
	s := New(1 << 16)
	for i := uint64(0); i < s.Len(); i += 3 {
		s.Set(i)
	}
	b.SetBytes(int64(s.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCountSink = s.Count()
	}
}
