// Package bitset implements a fixed-size dense bit set backed by a []uint64.
//
// It is the storage substrate for both the classic Bloom filter baseline and
// the Weighted Bloom Filter. The representation is stable (little-endian word
// order) so a set can be serialized by internal/wire and probed identically
// on another node.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-length bit set. The zero value is an empty set of length 0;
// use New for a set with capacity.
type Set struct {
	words []uint64
	n     uint64 // number of valid bits
}

// New returns a Set holding n bits, all zero.
func New(n uint64) *Set {
	return &Set{
		words: make([]uint64, (n+63)/64),
		n:     n,
	}
}

// FromWords reconstructs a Set of n bits from its word representation, e.g.
// after wire decoding. The slice is copied; the caller keeps ownership.
func FromWords(words []uint64, n uint64) (*Set, error) {
	if want := (n + 63) / 64; uint64(len(words)) != want {
		return nil, fmt.Errorf("bitset: %d words cannot hold exactly %d bits (want %d words)", len(words), n, want)
	}
	if n%64 != 0 && len(words) > 0 {
		if tail := words[len(words)-1] >> (n % 64); tail != 0 {
			return nil, fmt.Errorf("bitset: bits set beyond length %d", n)
		}
	}
	s := &Set{
		words: make([]uint64, len(words)),
		n:     n,
	}
	copy(s.words, words)
	return s, nil
}

// Len returns the number of bits the set holds.
func (s *Set) Len() uint64 { return s.n }

// Set turns bit i on. It panics if i is out of range, mirroring slice
// indexing semantics: an out-of-range bit is a programming error, not an
// environmental condition.
func (s *Set) Set(i uint64) {
	if i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i/64] |= 1 << (i % 64)
}

// Test reports whether bit i is on. Panics if i is out of range.
func (s *Set) Test(i uint64) bool {
	if i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	return s.words[i/64]&(1<<(i%64)) != 0
}

// Count returns the number of bits that are on. The popcount loop runs four
// independent accumulators wide so the per-word counts pipeline instead of
// serializing on one add chain — fill-ratio sampling over large digests is
// a hot path for the adaptive bench harness.
//
//dimatch:noalloc
func (s *Set) Count() uint64 {
	var c0, c1, c2, c3 uint64
	w := s.words
	i := 0
	for ; i+4 <= len(w); i += 4 {
		c0 += uint64(bits.OnesCount64(w[i]))
		c1 += uint64(bits.OnesCount64(w[i+1]))
		c2 += uint64(bits.OnesCount64(w[i+2]))
		c3 += uint64(bits.OnesCount64(w[i+3]))
	}
	for ; i < len(w); i++ {
		c0 += uint64(bits.OnesCount64(w[i]))
	}
	return c0 + c1 + c2 + c3
}

// FillRatio returns Count()/Len(), the fraction of set bits. It returns 0
// for an empty set.
func (s *Set) FillRatio() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.Count()) / float64(s.n)
}

// Words returns a copy of the underlying word storage, little-endian word
// order, for serialization.
func (s *Set) Words() []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	return &Set{
		words: append([]uint64(nil), s.words...),
		n:     s.n,
	}
}

// Equal reports whether two sets have the same length and identical bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// UnionWith ORs o into s. Both sets must have the same length.
//
// Digest accumulation — Bloofi tree builds, hierarchy union summaries —
// spends its time in this loop, so it is unrolled four words wide; the
// re-slice of s.words to o's length lets the compiler drop the bounds
// checks inside the unrolled body.
//
//dimatch:noalloc
func (s *Set) UnionWith(o *Set) error {
	if s.n != o.n {
		return fmt.Errorf("bitset: union of mismatched lengths %d and %d", s.n, o.n) //dimatch:allow noalloc — cold mismatch path, never taken while accumulating
	}
	b := o.words
	a := s.words[:len(b)]
	i := 0
	for ; i+4 <= len(b); i += 4 {
		a[i] |= b[i]
		a[i+1] |= b[i+1]
		a[i+2] |= b[i+2]
		a[i+3] |= b[i+3]
	}
	for ; i < len(b); i++ {
		a[i] |= b[i]
	}
	return nil
}

// OrFoldFrom ORs o into s across mismatched lengths, folding or expanding
// by word replication. Both lengths must be word-aligned multiples of 64 and
// one must divide the other.
//
// When o is longer, bit p of o lands on bit p mod s.Len() of s (fold); when
// o is shorter, every bit q of o lands on all bits ≡ q (mod o.Len()) of s
// (expand). For double-hashed Bloom positions over power-of-two lengths both
// directions are conservative: a position x mod M maps onto x mod m whenever
// m divides M, so any element whose bits are set in o has all its
// s-geometry bits set in s afterwards.
func (s *Set) OrFoldFrom(o *Set) error {
	if s.n == o.n {
		return s.UnionWith(o)
	}
	if s.n == 0 || o.n == 0 || s.n%64 != 0 || o.n%64 != 0 {
		return fmt.Errorf("bitset: fold of unaligned lengths %d and %d", s.n, o.n)
	}
	if o.n > s.n {
		if o.n%s.n != 0 {
			return fmt.Errorf("bitset: cannot fold %d bits onto %d (not a multiple)", o.n, s.n)
		}
		w := len(s.words)
		for i, x := range o.words {
			s.words[i%w] |= x
		}
		return nil
	}
	if s.n%o.n != 0 {
		return fmt.Errorf("bitset: cannot expand %d bits onto %d (not a multiple)", o.n, s.n)
	}
	w := len(o.words)
	for i := range s.words {
		s.words[i] |= o.words[i%w]
	}
	return nil
}

// SizeBytes returns the in-memory size of the bit storage in bytes, used by
// the storage-cost experiments.
func (s *Set) SizeBytes() uint64 {
	return uint64(len(s.words)) * 8
}
