package placement

import (
	"testing"

	"dimatch/internal/core"
)

func TestScoreDeterministic(t *testing.T) {
	if Score(1, 2) != Score(1, 2) {
		t.Fatal("score is not deterministic")
	}
	if Score(1, 2) == Score(1, 3) || Score(1, 2) == Score(2, 2) {
		t.Fatal("scores collide on trivially different inputs")
	}
}

func TestPickBasics(t *testing.T) {
	stations := []uint32{1, 2, 3, 4, 5}
	if got := Pick(7, stations, 0); got != nil {
		t.Fatalf("r=0 picked %v", got)
	}
	if got := Pick(7, nil, 2); got != nil {
		t.Fatalf("no stations picked %v", got)
	}
	if got := Pick(7, stations, 10); len(got) != len(stations) {
		t.Fatalf("r beyond membership picked %d stations, want %d", len(got), len(stations))
	}
	two := Pick(7, stations, 2)
	if len(two) != 2 || two[0] == two[1] {
		t.Fatalf("Pick(7, _, 2) = %v", two)
	}
	// Pick is a prefix of Rank.
	ranked := Rank(7, stations)
	if ranked[0] != two[0] || ranked[1] != two[1] {
		t.Fatalf("Pick %v is not a prefix of Rank %v", two, ranked)
	}
	// Rank must not mutate its input.
	if stations[0] != 1 || stations[4] != 5 {
		t.Fatalf("Rank mutated input: %v", stations)
	}
}

// TestMinimalDisruption pins rendezvous hashing's defining property: removing
// a station only reassigns the persons that station served — everyone else's
// replica set is untouched — and adding a station never displaces more than
// it wins.
func TestMinimalDisruption(t *testing.T) {
	stations := []uint32{10, 20, 30, 40, 50, 60}
	const r = 2
	const persons = 500

	full := make(map[core.PersonID][]uint32, persons)
	for p := core.PersonID(1); p <= persons; p++ {
		full[p] = Pick(p, stations, r)
	}

	// Remove station 30.
	var survivors []uint32
	for _, s := range stations {
		if s != 30 {
			survivors = append(survivors, s)
		}
	}
	for p, before := range full {
		after := Pick(p, survivors, r)
		held := false
		for _, s := range before {
			if s == 30 {
				held = true
			}
		}
		if !held {
			// Persons station 30 did not serve keep their exact replica set.
			for i := range before {
				if after[i] != before[i] {
					t.Fatalf("person %d moved from %v to %v though station 30 held no replica", p, before, after)
				}
			}
			continue
		}
		// Persons it did serve keep their surviving replica.
		for _, s := range before {
			if s == 30 {
				continue
			}
			found := false
			for _, a := range after {
				if a == s {
					found = true
				}
			}
			if !found {
				t.Fatalf("person %d lost surviving replica %d: %v -> %v", p, s, before, after)
			}
		}
	}

	// Add station 70: a person's set changes only if 70 enters it.
	grown := append(append([]uint32(nil), stations...), 70)
	for p, before := range full {
		after := Pick(p, grown, r)
		joined := false
		for _, a := range after {
			if a == 70 {
				joined = true
			}
		}
		if joined {
			continue
		}
		for i := range before {
			if after[i] != before[i] {
				t.Fatalf("person %d moved from %v to %v though station 70 did not win", p, before, after)
			}
		}
	}
}

// TestDistribution sanity-checks load balance: with 6 stations and R=2, no
// station should hold a wildly disproportionate share.
func TestDistribution(t *testing.T) {
	stations := []uint32{1, 2, 3, 4, 5, 6}
	counts := make(map[uint32]int)
	const persons = 3000
	for p := core.PersonID(1); p <= persons; p++ {
		for _, s := range Pick(p, stations, 2) {
			counts[s]++
		}
	}
	mean := 2 * persons / len(stations)
	for s, n := range counts {
		if n < mean/2 || n > 2*mean {
			t.Fatalf("station %d holds %d replicas, mean is %d", s, n, mean)
		}
	}
}

func TestTable(t *testing.T) {
	tab := NewTable()
	if tab.Len() != 0 || tab.Contains(1) {
		t.Fatal("fresh table not empty")
	}
	tab.Set(5, 2)
	tab.Set(3, 3)
	tab.Set(5, 2)
	if tab.Len() != 2 || !tab.Contains(5) {
		t.Fatalf("table has %d entries", tab.Len())
	}
	if r, ok := tab.Factor(3); !ok || r != 3 {
		t.Fatalf("Factor(3) = %d, %v", r, ok)
	}
	if _, ok := tab.Factor(4); ok {
		t.Fatal("Factor(4) found an entry")
	}
	keys := tab.Keys()
	if len(keys) != 2 || keys[0] != 3 || keys[1] != 5 {
		t.Fatalf("Keys() = %v", keys)
	}
	snap := tab.Snapshot()
	tab.Remove(5)
	if tab.Contains(5) || tab.Len() != 1 {
		t.Fatal("Remove did not remove")
	}
	if len(snap) != 2 {
		t.Fatal("snapshot mutated by Remove")
	}
}
