// Package placement assigns patterns to base stations with rendezvous
// (highest-random-weight, HRW) hashing and tracks the coordinator's placement
// intents.
//
// Rendezvous hashing scores every (person, station) pair with a deterministic
// mix of both IDs; a person's replicas live on the R highest-scoring alive
// stations. The scheme needs no coordination state beyond the membership
// list, every coordinator computes identical assignments, and it is minimally
// disruptive: removing a station only moves the patterns that station held
// (their next-ranked stations take over), and adding one only moves the
// patterns whose new station out-scores an incumbent. Bloofi (Crainiceanu &
// Lemire) motivates the coordinator-side per-station summaries this package's
// Table provides; "The Distributed Bloom Filter" (Ramabaja & Avdullahu)
// motivates keeping replicated filter state eventually consistent, which the
// cluster's reconciliation loop implements on top of these primitives.
package placement

import (
	"sort"
	"sync"

	"dimatch/internal/core"
	"dimatch/internal/hash"
)

// stationSalt decorrelates the station-ID mix from the person-ID mix, so a
// person whose ID collides numerically with a station ID still scores
// independently.
const stationSalt = 0x5bd1e995c3a90000

// Score returns the rendezvous weight of placing person p on the given
// station. Higher wins. Both sides of the pair pass through the splitmix64
// finalizer, so the scores of one person across stations — and of one
// station across persons — are well distributed.
func Score(p core.PersonID, station uint32) uint64 {
	return hash.Mix64(uint64(p) ^ hash.Mix64(stationSalt^uint64(station)))
}

// Rank returns the stations ordered by descending rendezvous score for
// person p, ties broken by ascending station ID (unreachable in practice —
// Mix64 is a bijection — but it keeps the order total). The input slice is
// not modified. Scores live in a flat slice, not a map: reconciliation
// ranks every placed person, so the per-call cost is S score computations
// and one slice sort, no hashing.
func Rank(p core.PersonID, stations []uint32) []uint32 {
	type scored struct {
		id    uint32
		score uint64
	}
	ranked := make([]scored, len(stations))
	for i, s := range stations {
		ranked[i] = scored{id: s, score: Score(p, s)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	out := make([]uint32, len(ranked))
	for i, s := range ranked {
		out[i] = s.id
	}
	return out
}

// Pick returns person p's replica set: the min(r, len(stations)) stations
// with the highest rendezvous scores. r <= 0 returns nil.
func Pick(p core.PersonID, stations []uint32, r int) []uint32 {
	if r <= 0 || len(stations) == 0 {
		return nil
	}
	ranked := Rank(p, stations)
	if r < len(ranked) {
		ranked = ranked[:r]
	}
	return ranked
}

// Table is the coordinator's record of placement intents: which persons are
// under automatic placement and at what desired replication factor. It holds
// intents, not locations — replica locations are always recomputed from the
// live membership with Pick, and the reconciliation loop moves copies until
// reality matches the intent. The table is safe for concurrent use: searches
// consult it on the aggregation path while mutations update it.
type Table struct {
	mu      sync.RWMutex
	entries map[core.PersonID]int
}

// NewTable returns an empty placement table.
func NewTable() *Table {
	return &Table{entries: make(map[core.PersonID]int)}
}

// Set records (or updates) a person's desired replication factor.
func (t *Table) Set(p core.PersonID, r int) {
	t.mu.Lock()
	t.entries[p] = r
	t.mu.Unlock()
}

// Remove forgets a person; reconciliation will no longer manage them.
func (t *Table) Remove(p core.PersonID) {
	t.mu.Lock()
	delete(t.entries, p)
	t.mu.Unlock()
}

// Factor returns a person's desired replication factor, if placed.
func (t *Table) Factor(p core.PersonID) (int, bool) {
	t.mu.RLock()
	r, ok := t.entries[p]
	t.mu.RUnlock()
	return r, ok
}

// Contains reports whether the person is under automatic placement. It is
// the predicate the replica-aware aggregation consults per reported person.
func (t *Table) Contains(p core.PersonID) bool {
	t.mu.RLock()
	_, ok := t.entries[p]
	t.mu.RUnlock()
	return ok
}

// Len returns the number of placed persons.
func (t *Table) Len() int {
	t.mu.RLock()
	n := len(t.entries)
	t.mu.RUnlock()
	return n
}

// Snapshot returns a copy of the table: person → desired factor. The
// reconciliation loop works over a snapshot so concurrent Place calls cannot
// race its iteration.
func (t *Table) Snapshot() map[core.PersonID]int {
	t.mu.RLock()
	out := make(map[core.PersonID]int, len(t.entries))
	for p, r := range t.entries {
		out[p] = r
	}
	t.mu.RUnlock()
	return out
}

// Keys returns the placed person IDs in ascending order.
func (t *Table) Keys() []core.PersonID {
	t.mu.RLock()
	out := make([]core.PersonID, 0, len(t.entries))
	for p := range t.entries {
		out = append(out, p)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
