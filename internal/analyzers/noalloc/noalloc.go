// Package noalloc guards the hot paths: a function whose doc comment
// carries //dimatch:noalloc is checked for allocating constructs — make,
// new, slice/map/pointer composite literals, closures, goroutines,
// string/byte conversions, interface boxing (including variadic ...any
// calls like fmt.Errorf), and append onto anything that is not a reused
// buffer (a variable initialized from a slice expression such as
// b := m.buf[:0]).
//
// The static check is the early warning; the per-package alloc_pin_test.go
// harness holds the same functions to 0 allocs/op at runtime with
// testing.AllocsPerRun, and the analyzers suite test keeps the two lists in
// sync. Cold paths inside a hot function (error formatting on a
// length-mismatch, say) are suppressed line by line with
// //dimatch:allow noalloc and a rationale.
package noalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"dimatch/internal/analyzers/analysis"
)

// Analyzer is the noalloc pass.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag allocating constructs inside //dimatch:noalloc functions",
	Run:  run,
}

// Marker is the doc-comment annotation that opts a function in.
const Marker = "//dimatch:noalloc"

// Annotated reports whether fn opted in to the zero-allocation check.
func Annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

// DisplayName renders fn as it appears in diagnostics and pin harnesses:
// "Match" or "(*Matcher).Match".
func DisplayName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	recv := fn.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		if id, ok := star.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fn.Name.Name
		}
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !Annotated(fn) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := DisplayName(fn)
	reused := reusedBuffers(pass.TypesInfo, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure allocates in noalloc function %s", name)
			return false // its body is the closure's problem
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine in noalloc function %s", name)
		case *ast.UnaryExpr:
			if lit, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				pass.Reportf(lit.Pos(), "&composite literal allocates in noalloc function %s", name)
				return false
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Reportf(n.Pos(), "slice or map literal allocates in noalloc function %s", name)
			}
		case *ast.CallExpr:
			checkCall(pass, n, name, reused)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, name string, reused map[types.Object]bool) {
	// Conversions: string <-> []byte/[]rune copy, concrete -> interface box.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type.Underlying()
		src := pass.TypesInfo.TypeOf(call.Args[0])
		if isStringBytesConv(dst, src) {
			pass.Reportf(call.Pos(), "string/byte conversion copies in noalloc function %s", name)
		}
		if _, dstIface := dst.(*types.Interface); dstIface && src != nil {
			if _, srcIface := src.Underlying().(*types.Interface); !srcIface && !isNilConst(pass.TypesInfo, call.Args[0]) {
				pass.Reportf(call.Pos(), "interface conversion boxes in noalloc function %s", name)
			}
		}
		return
	}

	switch callee(call) {
	case "make":
		pass.Reportf(call.Pos(), "make allocates in noalloc function %s", name)
		return
	case "new":
		pass.Reportf(call.Pos(), "new allocates in noalloc function %s", name)
		return
	case "append":
		if len(call.Args) > 0 && !isReusedBuffer(pass.TypesInfo, call.Args[0], reused) {
			pass.Reportf(call.Pos(), "append onto a non-reused buffer may allocate in noalloc function %s; grow a b := buf[:0] scratch instead", name)
		}
		return
	}

	// Variadic ...interface{} calls box every argument (fmt.Errorf and kin).
	if sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature); ok && sig.Variadic() {
		last := sig.Params().At(sig.Params().Len() - 1)
		if slice, ok := last.Type().(*types.Slice); ok {
			if _, iface := slice.Elem().Underlying().(*types.Interface); iface && len(call.Args) >= sig.Params().Len() {
				pass.Reportf(call.Pos(), "variadic interface call boxes its arguments in noalloc function %s", name)
			}
		}
	}
}

func callee(call *ast.CallExpr) string {
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func isStringBytesConv(dst, src types.Type) bool {
	if src == nil {
		return false
	}
	src = src.Underlying()
	return (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isNilConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// reusedBuffers collects variables initialized from a slice expression
// (b := m.buf[:0]): append may grow them without the analyzer objecting,
// because steady-state capacity makes the append free and the runtime pin
// harness catches any regression.
func reusedBuffers(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isScratchInit(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// isScratchInit reports whether rhs establishes a buffer appends may grow:
// a reslice of existing storage (m.buf[:0]) or an explicit
// make-with-capacity (which is itself reported, once, as the allocation).
func isScratchInit(rhs ast.Expr) bool {
	switch rhs := rhs.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CallExpr:
		return callee(rhs) == "make" && len(rhs.Args) == 3
	}
	return false
}

// isReusedBuffer reports whether the append target is a slice expression
// itself (append(buf[:0], ...)) or a variable marked as a reused buffer.
func isReusedBuffer(info *types.Info, e ast.Expr, reused map[types.Object]bool) bool {
	switch e := e.(type) {
	case *ast.SliceExpr:
		return true
	case *ast.Ident:
		return reused[info.ObjectOf(e)]
	}
	return false
}
