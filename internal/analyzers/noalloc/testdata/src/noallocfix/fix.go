// Package noallocfix exercises the noalloc rules over annotated and
// unannotated functions.
package noallocfix

import "fmt"

type scratch struct {
	buf []int
}

//dimatch:noalloc
func (s *scratch) sumFresh(vals []int) []int {
	out := make([]int, 0, len(vals)) // want `make allocates in noalloc function \(\*scratch\)\.sumFresh`
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

//dimatch:noalloc
func (s *scratch) sumGrowing(vals []int) []int {
	var out []int
	for _, v := range vals {
		out = append(out, v) // want `append onto a non-reused buffer may allocate in noalloc function`
	}
	return out
}

//dimatch:noalloc
func describe(v int) error {
	if v < 0 {
		return fmt.Errorf("negative: %d", v) // want `variadic interface call boxes its arguments in noalloc function describe`
	}
	return nil
}

//dimatch:noalloc
func stringify(b []byte) string {
	return string(b) // want `string/byte conversion copies in noalloc function stringify`
}

//dimatch:noalloc
func boxed(v int) interface{} {
	return interface{}(v) // want `interface conversion boxes in noalloc function boxed`
}

//dimatch:noalloc
func deferred(v int) func() int {
	return func() int { return v } // want `closure allocates in noalloc function deferred`
}

// sumReused is the conforming shape: a b := buf[:0] scratch reused across
// calls, appends allowed, no fresh allocations on the steady path.
//
//dimatch:noalloc
func (s *scratch) sumReused(vals []int) []int {
	out := s.buf[:0]
	for _, v := range vals {
		out = append(out, v)
	}
	s.buf = out
	return out
}

// coldPath shows the per-line escape hatch for an error branch that is
// allowed to allocate.
//
//dimatch:noalloc
func (s *scratch) coldPath(vals []int) ([]int, error) {
	if len(vals) == 0 {
		return nil, fmt.Errorf("empty input") //dimatch:allow noalloc — cold error path
	}
	out := s.buf[:0]
	out = append(out, vals[0])
	return out, nil
}

// unannotated allocates freely: not a finding without the marker.
func unannotated(vals []int) []int {
	out := make([]int, len(vals))
	copy(out, vals)
	return out
}
