package noalloc_test

import (
	"testing"

	"dimatch/internal/analyzers/analysistest"
	"dimatch/internal/analyzers/noalloc"
)

func TestNoalloc(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), noalloc.Analyzer, "noallocfix")
}
