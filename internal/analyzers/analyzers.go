// Package analyzers registers the repo's invariant checkers for cmd/di-lint
// and the suite test. See docs/ANALYZERS.md for what each pass enforces and
// how to suppress a finding.
package analyzers

import (
	"dimatch/internal/analyzers/analysis"
	"dimatch/internal/analyzers/ctxflow"
	"dimatch/internal/analyzers/epochpin"
	"dimatch/internal/analyzers/lockio"
	"dimatch/internal/analyzers/noalloc"
	"dimatch/internal/analyzers/wirekind"
)

// All is every analyzer di-lint runs, in reporting order.
var All = []*analysis.Analyzer{
	wirekind.Analyzer,
	epochpin.Analyzer,
	lockio.Analyzer,
	ctxflow.Analyzer,
	noalloc.Analyzer,
}
