// Package wirekinduse exercises the dispatch-switch and discarded-error
// rules from a package that consumes the wire fixture.
package wirekinduse

import "wirefix"

func dispatch(k wire.Kind) string {
	switch k { // want `switch over wire.Kind without a default`
	case wire.KindA:
		return "a"
	case wire.KindB:
		return "b"
	}
	return ""
}

// dispatchOK carries a default clause: the conforming counterexample.
func dispatchOK(k wire.Kind) string {
	switch k {
	case wire.KindA:
		return "a"
	default:
		return "?"
	}
}

func sloppy(b []byte) int {
	wire.DecodeThing(b)          // want `result of DecodeThing is discarded`
	v, _ := wire.DecodeThing(b)  // want `error result of DecodeThing is assigned to _`
	wire.EncodeThing(v)          // want `result of EncodeThing is discarded`
	return v + wire.DecodeLen(b) // no error result: not a finding
}

// careful propagates the codec error: the conforming counterexample.
func careful(b []byte) (int, error) {
	return wire.DecodeThing(b)
}
