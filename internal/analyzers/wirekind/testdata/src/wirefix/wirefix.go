// Package wire is a miniature of the real wire package for analyzer tests:
// a Kind type with a version-gating map and a String table, seeded with one
// constant missing from each.
package wire

type Kind uint8

const (
	KindA Kind = 1
	KindB Kind = 2
	KindC Kind = 3 // want `wire kind KindC is not registered in the version-gating table`
	KindD Kind = 4 // want `wire kind KindD has no case in Kind.String`
)

var kindFloors = map[Kind]uint8{
	KindA: 1,
	KindB: 2,
	KindD: 1,
}

// MinVersion keeps kindFloors referenced.
func MinVersion(k Kind) (uint8, bool) {
	v, ok := kindFloors[k]
	return v, ok
}

func (k Kind) String() string {
	switch k {
	case KindA:
		return "A"
	case KindB:
		return "B"
	case KindC:
		return "C"
	default:
		return "?"
	}
}

// DecodeThing mimics a payload decoder returning an error.
func DecodeThing(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errEmpty
	}
	return int(b[0]), nil
}

// EncodeThing mimics an encoder whose only result is the error.
func EncodeThing(v int) error {
	if v < 0 {
		return errEmpty
	}
	return nil
}

// DecodeLen has no error result; discarding it is not a finding.
func DecodeLen(b []byte) int { return len(b) }

type wireError string

func (e wireError) Error() string { return string(e) }

const errEmpty = wireError("empty")
