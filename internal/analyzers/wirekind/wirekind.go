// Package wirekind enforces the wire-protocol registration invariant: a
// message kind that the version-gating table or the String table does not
// know is a kind that old peers cannot reject cleanly (docs/WIRE.md).
//
// In the package that declares the Kind type (internal/wire), every
// exported Kind constant must appear as a key of the version-gating map
// (the package-level map[Kind]uint8) and as a case of Kind.String. In every
// package, a switch over a Kind-typed value must carry a default clause, so
// a newly added kind falls into explicit unknown-handling instead of being
// silently dropped; and the error result of a wire Encode*/Decode* call
// must not be discarded.
package wirekind

import (
	"go/ast"
	"go/types"
	"strings"

	"dimatch/internal/analyzers/analysis"
)

// Analyzer is the wirekind pass.
var Analyzer = &analysis.Analyzer{
	Name: "wirekind",
	Doc:  "check that every wire.Kind is version-gated, stringable, and dispatched with a default",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	kindType := lookupKindType(pass.Pkg)
	if kindType != nil && pass.Pkg.Scope().Lookup("Kind") != nil {
		checkRegistration(pass, kindType)
	}
	checkSwitches(pass)
	checkDiscardedErrors(pass)
	return nil
}

// lookupKindType returns the package's named integer type Kind, if any.
func lookupKindType(pkg *types.Package) *types.Named {
	obj := pkg.Scope().Lookup("Kind")
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	return named
}

// checkRegistration verifies every exported Kind constant is a key of the
// version-gating map and a case of Kind.String.
func checkRegistration(pass *analysis.Pass, kindType *types.Named) {
	var consts []*types.Const
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && c.Exported() && types.Identical(c.Type(), kindType) {
			consts = append(consts, c)
		}
	}
	if len(consts) == 0 {
		return
	}

	gating, gatingFound := gatingKeys(pass, kindType)
	strung, stringFound := stringCases(pass, kindType)
	for _, c := range consts {
		if gatingFound && !gating[c.Name()] {
			pass.Reportf(c.Pos(), "wire kind %s is not registered in the version-gating table", c.Name())
		}
		if stringFound && !strung[c.Name()] {
			pass.Reportf(c.Pos(), "wire kind %s has no case in Kind.String", c.Name())
		}
	}
}

// gatingKeys collects the constant names used as keys of the package-level
// map[Kind]<integer> literal (the version-gating table).
func gatingKeys(pass *analysis.Pass, kindType *types.Named) (map[string]bool, bool) {
	keys := make(map[string]bool)
	found := false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gen, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gen.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					lit, ok := v.(*ast.CompositeLit)
					if !ok || !isKindKeyedMap(pass.TypesInfo.TypeOf(lit), kindType) {
						continue
					}
					found = true
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if id := constName(kv.Key); id != "" {
							keys[id] = true
						}
					}
				}
			}
		}
	}
	return keys, found
}

func isKindKeyedMap(t types.Type, kindType *types.Named) bool {
	m, ok := t.(*types.Map)
	if !ok {
		return false
	}
	if !types.Identical(m.Key(), kindType) {
		return false
	}
	basic, ok := m.Elem().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// stringCases collects the constant names appearing as switch cases in the
// Kind.String method.
func stringCases(pass *analysis.Pass, kindType *types.Named) (map[string]bool, bool) {
	cases := make(map[string]bool)
	found := false
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != "String" || fn.Recv == nil || len(fn.Recv.List) != 1 {
				continue
			}
			recv := pass.TypesInfo.TypeOf(fn.Recv.List[0].Type)
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if !types.Identical(recv, kindType) {
				continue
			}
			found = true
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					if id := constName(e); id != "" {
						cases[id] = true
					}
				}
				return true
			})
		}
	}
	return cases, found
}

// constName returns the identifier name of e if it is a plain or qualified
// identifier.
func constName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// checkSwitches requires a default clause on every switch over a Kind-typed
// value, in any package.
func checkSwitches(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, ok := pass.TypesInfo.TypeOf(sw.Tag).(*types.Named)
			if !ok || named.Obj().Name() != "Kind" {
				return true
			}
			if basic, ok := named.Underlying().(*types.Basic); !ok || basic.Info()&types.IsInteger == 0 {
				return true
			}
			for _, c := range sw.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
					return true // has default
				}
			}
			pass.Reportf(sw.Pos(), "switch over %s.Kind without a default: an unknown kind would be silently dropped", named.Obj().Pkg().Name())
			return true
		})
	}
}

// checkDiscardedErrors flags wire Encode*/Decode* calls whose error result
// is dropped, either by using the call as a statement or by assigning the
// error position to the blank identifier. Test files are exempt: fuzz and
// property tests probe decoders with inputs whose rejection is the point.
func checkDiscardedErrors(pass *analysis.Pass) {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && codecErrIndex(pass, call) >= 0 {
					pass.Reportf(call.Pos(), "result of %s is discarded: a codec error would go unnoticed", codecName(call))
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := n.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				i := codecErrIndex(pass, call)
				if i < 0 || i >= len(n.Lhs) {
					return true
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "error result of %s is assigned to _: a codec error would go unnoticed", codecName(call))
				}
			}
			return true
		})
	}
}

// codecErrIndex returns the index of the error result if call is a wire
// Encode*/Decode* function returning an error, else -1.
func codecErrIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	name := codecName(call)
	if !strings.HasPrefix(name, "Encode") && !strings.HasPrefix(name, "Decode") {
		return -1
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "wire" {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" {
			return i
		}
	}
	return -1
}

func codecName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
