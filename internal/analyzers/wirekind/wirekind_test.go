package wirekind_test

import (
	"testing"

	"dimatch/internal/analyzers/analysistest"
	"dimatch/internal/analyzers/wirekind"
)

func TestWirekind(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wirekind.Analyzer, "wirefix", "wirekinduse")
}
