// Package ctxflow keeps cancellation flowing: library code must thread the
// caller's context to every downstream wire call rather than minting its
// own. Outside package main and _test.go files, context.Background() and
// context.TODO() are findings — a search that invents a fresh context
// cannot be cancelled by the caller that started it. The one structural
// exception is the nil-guard at an exported boundary:
//
//	if ctx == nil {
//		ctx = context.Background()
//	}
//
// A context.Context parameter that the function never reads is also a
// finding: it advertises cancellation it does not deliver.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"dimatch/internal/analyzers/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "forbid context.Background/TODO in library paths and unused ctx parameters",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // binaries own their root context
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		exempt := nilGuardCalls(pass, f)
		checkFreshContexts(pass, f, exempt)
		checkUnusedParams(pass, f)
	}
	return nil
}

// nilGuardCalls collects the context.Background()/TODO() calls inside the
// blessed `if ctx == nil { ctx = context.Background() }` shape.
func nilGuardCalls(pass *analysis.Pass, f *ast.File) map[*ast.CallExpr]bool {
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || !isNilCheck(pass.TypesInfo, cond) {
			return true
		}
		for _, stmt := range ifs.Body.List {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok {
				continue
			}
			for _, rhs := range as.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && freshContextCall(pass.TypesInfo, call) != "" {
					exempt[call] = true
				}
			}
		}
		return true
	})
	return exempt
}

// isNilCheck reports whether cond compares a context.Context against nil.
func isNilCheck(info *types.Info, cond *ast.BinaryExpr) bool {
	var other ast.Expr
	switch {
	case isNilIdent(cond.X):
		other = cond.Y
	case isNilIdent(cond.Y):
		other = cond.X
	default:
		return false
	}
	return isContextType(info.TypeOf(other))
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func checkFreshContexts(pass *analysis.Pass, f *ast.File, exempt map[*ast.CallExpr]bool) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || exempt[call] {
			return true
		}
		if name := freshContextCall(pass.TypesInfo, call); name != "" {
			pass.Reportf(call.Pos(), "%s in a library path severs cancellation; thread the caller's ctx instead", name)
		}
		return true
	})
}

// freshContextCall returns "context.Background" or "context.TODO" if call
// is one of them, else "".
func freshContextCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return "context." + fn.Name()
	}
	return ""
}

// checkUnusedParams flags functions that accept a context.Context and never
// read it.
func checkUnusedParams(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || len(fn.Body.List) == 0 || fn.Type.Params == nil {
			continue
		}
		for _, field := range fn.Type.Params.List {
			if !isContextType(pass.TypesInfo.TypeOf(field.Type)) {
				continue
			}
			for _, name := range field.Names {
				if name.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if !objUsed(pass.TypesInfo, fn.Body, obj) {
					pass.Reportf(name.Pos(), "ctx parameter %s is never used: the function advertises cancellation it does not deliver", name.Name)
				}
			}
		}
	}
}

func objUsed(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
