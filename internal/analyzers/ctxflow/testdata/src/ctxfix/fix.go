// Package ctxfix exercises the ctxflow rules: fresh contexts in library
// paths, the blessed nil-guard, and unused ctx parameters.
package ctxfix

import "context"

type station struct{}

func (s *station) query(ctx context.Context) error { return ctx.Err() }

// searchDetached mints its own context: the caller's cancellation is lost.
func searchDetached(s *station) error {
	return s.query(context.Background()) // want `context\.Background in a library path`
}

// searchDeferred parks cleanup on a TODO context: same severed lineage.
func searchDeferred(s *station) error {
	ctx := context.TODO() // want `context\.TODO in a library path`
	return s.query(ctx)
}

// decorative accepts a ctx it never reads.
func decorative(ctx context.Context, s *station) error { // want `ctx parameter ctx is never used`
	return s.query(context.TODO()) // want `context\.TODO in a library path`
}

// guarded is the conforming boundary shape: Background only as the nil
// default, then threaded everywhere.
func guarded(ctx context.Context, s *station) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return s.query(ctx)
}

// threaded is the ordinary conforming shape.
func threaded(ctx context.Context, s *station) error {
	return s.query(ctx)
}

// anonymous explicitly discards the context with a blank name: allowed,
// the signature is honest about it.
func anonymous(_ context.Context, s *station) error {
	return s.query(context.TODO()) //dimatch:allow ctxflow — demo of the escape hatch
}
