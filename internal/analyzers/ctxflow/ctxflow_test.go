package ctxflow_test

import (
	"testing"

	"dimatch/internal/analyzers/analysistest"
	"dimatch/internal/analyzers/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "ctxfix")
}
