package analyzers_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dimatch/internal/analyzers"
	"dimatch/internal/analyzers/analysis"
	"dimatch/internal/analyzers/noalloc"
)

// TestRepoIsClean runs every analyzer over the whole module and fails on any
// finding: the repo's own invariants, mechanically enforced on every go test
// run, not just in CI. A deliberate exception belongs next to the code as a
// //dimatch:allow line with a rationale, not in this test.
func TestRepoIsClean(t *testing.T) {
	pkgs := loadRepo(t)
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info, analyzers.All)
		if err != nil {
			t.Fatalf("%s: %v", pkg.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", d.Position(pkg.Fset), d.Message, d.Analyzer)
		}
	}
}

// TestNoallocFunctionsArePinned keeps the static and runtime halves of the
// noalloc contract in sync: every //dimatch:noalloc function must appear by
// display name in its package's alloc_pin_test.go, so annotating a function
// without holding it to 0 allocs/op at runtime fails here (and the skeleton
// to paste comes from `go run ./cmd/di-lint -allocharness ./...`).
func TestNoallocFunctionsArePinned(t *testing.T) {
	pkgs := loadRepo(t)
	annotated := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Pos()).Filename
			pins, _ := os.ReadFile(filepath.Join(filepath.Dir(filename), "alloc_pin_test.go"))
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || !noalloc.Annotated(fn) {
					continue
				}
				annotated++
				if name := noalloc.DisplayName(fn); !strings.Contains(string(pins), name) {
					t.Errorf("%s: //dimatch:noalloc function %s has no AllocsPerRun pin in %s",
						pkg.ImportPath, name, filepath.Join(filepath.Dir(filename), "alloc_pin_test.go"))
				}
			}
		}
	}
	if annotated == 0 {
		t.Fatal("no //dimatch:noalloc functions found anywhere: the annotation or the loader is broken")
	}
}

// loadRepo type-checks every package of the module from the repo root.
func loadRepo(t *testing.T) []*analysis.Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repo packages: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	return pkgs
}
