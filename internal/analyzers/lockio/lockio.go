// Package lockio forbids blocking wire I/O while a mutex is held: no
// Mux.Roundtrip/RoundtripMany and no link Send under any sync.Mutex or
// sync.RWMutex. A roundtrip parks the caller until a remote station
// answers; holding a cluster or summaryCache mutex across that wait is the
// deadlock-by-distance class the routing generation guard (PR 5) exists to
// avoid — every such wait must happen on a pinned snapshot outside the
// critical section.
//
// The two deliberate exceptions in the tree (Mux.Send serializing frames
// under its own sendMu, and RoundtripMany's send goroutine doing the same)
// carry //dimatch:allow lockio suppressions with rationale.
package lockio

import (
	"go/ast"
	"go/types"

	"dimatch/internal/analyzers/analysis"
	"dimatch/internal/analyzers/lockstate"
)

// Analyzer is the lockio pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockio",
	Doc:  "forbid Mux roundtrips and link sends while a mutex is held",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			lockstate.Walk(pass.TypesInfo, fn.Body, func(n ast.Node, held lockstate.Set) {
				if len(held) == 0 {
					return
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				if what := blockingIO(pass.TypesInfo, call); what != "" {
					pass.Reportf(call.Pos(), "%s while %s is held: a blocked peer would wedge every goroutine waiting on the mutex", what, heldNames(held))
				}
			})
		}
	}
	return nil
}

// blockingIO classifies a call as forbidden-under-lock wire I/O: any
// Roundtrip/RoundtripMany method, or a Send method on a Mux or on a link
// (an interface that also declares Recv).
func blockingIO(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return ""
	}
	recv := selection.Recv()
	switch sel.Sel.Name {
	case "Roundtrip", "RoundtripMany":
		return "call to " + typeName(recv) + "." + sel.Sel.Name
	case "Send":
		if isMux(recv) || isLinkInterface(recv) {
			return "call to " + typeName(recv) + ".Send"
		}
	}
	return ""
}

func isMux(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Mux"
}

// isLinkInterface reports whether t is an interface declaring both Send and
// Recv — the shape of a wire link, whose Send may block on a full pipe.
func isLinkInterface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	var send, recv bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "Send":
			send = true
		case "Recv":
			recv = true
		}
	}
	return send && recv
}

func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

func heldNames(held lockstate.Set) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) == 1 {
		return names[0]
	}
	// Deterministic order for multi-mutex messages.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	out := names[0]
	for _, n := range names[1:] {
		out += ", " + n
	}
	return out
}
