package lockio_test

import (
	"testing"

	"dimatch/internal/analyzers/analysistest"
	"dimatch/internal/analyzers/lockio"
)

func TestLockio(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lockio.Analyzer, "lockiofix")
}
