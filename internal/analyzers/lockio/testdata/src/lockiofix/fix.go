// Package lockiofix exercises the lockio rule with a miniature mux, link
// and cluster.
package lockiofix

import (
	"context"
	"sync"
)

type Message struct{ Kind uint8 }

// Link is the wire-link shape: Send may block on a full pipe.
type Link interface {
	Send(Message) error
	Recv() (Message, error)
	Close() error
}

type Mux struct{ link Link }

func (m *Mux) Roundtrip(ctx context.Context, msg Message) (Message, error) {
	return m.RoundtripMany(ctx, msg)
}

func (m *Mux) RoundtripMany(ctx context.Context, msg Message) (Message, error) {
	if err := m.link.Send(msg); err != nil {
		return Message{}, err
	}
	return m.link.Recv()
}

func (m *Mux) Send(msg Message) error { return m.link.Send(msg) }

type cluster struct {
	mu  sync.Mutex
	mux *Mux
}

// searchHoldingLock roundtrips under the cluster mutex: the deadlock shape.
func (c *cluster) searchHoldingLock(ctx context.Context) (Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux.Roundtrip(ctx, Message{}) // want `call to Mux\.Roundtrip while c\.mu is held`
}

// notifyHoldingLock does a fire-and-forget send under the mutex; Send
// serializes on the link and can block just as long.
func (c *cluster) notifyHoldingLock() error {
	c.mu.Lock()
	err := c.mux.Send(Message{}) // want `call to Mux\.Send while c\.mu is held`
	c.mu.Unlock()
	return err
}

// rawLinkHoldingLock blocks on the link interface directly.
func (c *cluster) rawLinkHoldingLock(l Link) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return l.Send(Message{}) // want `call to Link\.Send while c\.mu is held`
}

// searchPinned is the conforming shape: snapshot under the lock, roundtrip
// outside it.
func (c *cluster) searchPinned(ctx context.Context) (Message, error) {
	c.mu.Lock()
	mux := c.mux
	c.mu.Unlock()
	return mux.Roundtrip(ctx, Message{})
}

// closeUnderLock calls a non-blocking method under the lock: not a finding.
func (c *cluster) closeUnderLock(l Link) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return l.Close()
}

// sendSerialized shows the documented escape hatch for the one legitimate
// case (a mutex that exists to serialize the link itself).
func (c *cluster) sendSerialized() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mux.Send(Message{}) //dimatch:allow lockio — this mutex serializes the link
}
