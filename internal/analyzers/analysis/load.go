package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listEntry is the subset of `go list -json` output the loader needs.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
}

// Load resolves the given `go list` patterns (e.g. "./...") relative to dir
// and returns every matched package parsed and type-checked, with imports
// satisfied from compiler export data. It shells out to the go tool for
// package discovery and export-data builds but performs its own parse and
// type-check so analyzers get syntax trees with comments.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,DepOnly,Standard",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.Bytes())
	}

	exports := make(map[string]string) // import path -> export data file
	var roots []listEntry
	dec := json.NewDecoder(&stdout)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: go list output: %v", err)
		}
		if e.Export != "" {
			exports[e.ImportPath] = e.Export
		}
		if !e.DepOnly {
			roots = append(roots, e)
		}
	}

	var pkgs []*Package
	for _, e := range roots {
		if e.Name == "" || len(e.GoFiles) == 0 {
			continue
		}
		var files []string
		for _, f := range e.GoFiles {
			files = append(files, filepath.Join(e.Dir, f))
		}
		pkg, err := CheckFiles(e.ImportPath, files, exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses the named files as one package and type-checks them,
// resolving imports through the given import-path -> export-data-file map.
func CheckFiles(importPath string, filenames []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	pkg, info, err := Check(importPath, fset, files, ExportImporter(fset, exports))
	if err != nil {
		return nil, err
	}
	return &Package{ImportPath: importPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ExportImporter returns a types.Importer that satisfies imports from the
// compiler export-data files recorded in exports (import path -> file).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check type-checks the files as package importPath and returns the package
// with a fully populated types.Info.
func Check(importPath string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return pkg, info, nil
}
