// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis API: just enough Analyzer/Pass surface for
// the repo's invariant checkers (cmd/di-lint) to be written in the standard
// shape, without taking an external dependency. An analyzer written against
// this package ports to the real framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dimatch:allow suppression comments. It must be a valid Go
	// identifier.
	Name string

	// Doc is the help text: first line is a one-sentence summary.
	Doc string

	// Run applies the analyzer to one package. It reports findings through
	// pass.Report/Reportf and returns an error only for failures of the
	// analyzer itself (a finding is not an error).
	Run func(*Pass) error
}

// Pass hands an Analyzer one type-checked package to inspect.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
	suppressed  map[string]map[int]bool // filename -> line -> allow present
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Position resolves the diagnostic's position against fset.
func (d Diagnostic) Position(fset *token.FileSet) token.Position {
	return fset.Position(d.Pos)
}

// Reportf records a finding at pos unless a suppression comment covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a finding unless the line it lands on — or the line above,
// for a standalone suppression comment — carries
// "//dimatch:allow <analyzer>".
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	position := p.Fset.Position(d.Pos)
	if lines := p.suppressed[position.Filename]; lines != nil {
		if lines[position.Line] || lines[position.Line-1] {
			return
		}
	}
	p.diagnostics = append(p.diagnostics, d)
}

// buildSuppressions indexes every //dimatch:allow comment that names this
// pass's analyzer (or "all"), by file and line.
func (p *Pass) buildSuppressions() {
	p.suppressed = make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				name, ok := parseAllow(c.Text)
				if !ok || (name != p.Analyzer.Name && name != "all") {
					continue
				}
				position := p.Fset.Position(c.Pos())
				lines := p.suppressed[position.Filename]
				if lines == nil {
					lines = make(map[int]bool)
					p.suppressed[position.Filename] = lines
				}
				lines[position.Line] = true
			}
		}
	}
}

// parseAllow extracts the analyzer name from a "//dimatch:allow <name>[ — reason]"
// comment; ok is false for any other comment.
func parseAllow(text string) (name string, ok bool) {
	const prefix = "//dimatch:allow "
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// Run applies each analyzer to the package and returns the surviving
// findings sorted by position. The Pass handed to every analyzer is fresh;
// analyzers cannot observe each other.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.buildSuppressions()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		out = append(out, pass.diagnostics...)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
