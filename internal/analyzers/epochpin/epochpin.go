// Package epochpin enforces the epoch-pinning invariant from
// docs/ARCHITECTURE.md: cluster search and routing code must work against a
// pinned membership snapshot, never against the live mutable fields.
//
// Mechanically this is a guarded-field discipline. A struct field annotated
//
//	ep *epoch // dimatch:guardedby mu
//
// may only be read or written while the named sibling mutex of the same
// receiver is held (per the lockstate tracker). Search paths hold no
// cluster mutex, so the rule forces them through the snapshot handed to
// them — exactly the paper's requirement that one search sees one
// consistent membership. Two constructor shapes are exempt: functions whose
// name ends in "Locked" (the repo's convention for callers-hold-the-lock
// helpers) and accesses through a local variable initialized from a
// composite literal in the same function (the value is not yet shared).
package epochpin

import (
	"go/ast"
	"go/types"
	"strings"

	"dimatch/internal/analyzers/analysis"
	"dimatch/internal/analyzers/lockstate"
)

// Analyzer is the epochpin pass.
var Analyzer = &analysis.Analyzer{
	Name: "epochpin",
	Doc:  "check that dimatch:guardedby fields are only touched with their mutex held",
	Run:  run,
}

const marker = "dimatch:guardedby "

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // single-goroutine test setup may stage fields directly
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			checkFunc(pass, fn, guards)
		}
	}
	return nil
}

// collectGuards maps each annotated struct field object to the name of the
// mutex field guarding it.
func collectGuards(pass *analysis.Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mutex := guardName(field)
				if mutex == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = mutex
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardName extracts the mutex field name from a field's doc or line
// comment.
func guardName(field *ast.Field) string {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			if i := strings.Index(c.Text, marker); i >= 0 {
				rest := strings.TrimSpace(c.Text[i+len(marker):])
				if j := strings.IndexAny(rest, " \t"); j >= 0 {
					rest = rest[:j]
				}
				return rest
			}
		}
	}
	return ""
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guards map[types.Object]string) {
	fresh := freshLocals(pass.TypesInfo, fn)
	lockstate.Walk(pass.TypesInfo, fn.Body, func(n ast.Node, held lockstate.Set) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return
		}
		mutex, guarded := guards[fieldObj(selection)]
		if !guarded {
			return
		}
		base := lockstate.ExprString(sel.X)
		if base == "" {
			// Access through a call result or index expression: the tracker
			// cannot name the mutex; err toward reporting so the access gets
			// an explicit suppression with a rationale.
			pass.Reportf(sel.Pos(), "field %s is guarded by %s but the receiver is not a simple variable; hold the mutex and simplify the access", sel.Sel.Name, mutex)
			return
		}
		if rootIdent, ok := rootOf(sel.X); ok && fresh[pass.TypesInfo.ObjectOf(rootIdent)] {
			return // freshly constructed local, not yet shared
		}
		if !held.Held(base + "." + mutex) {
			pass.Reportf(sel.Pos(), "field %s.%s is guarded by %s.%s which is not held here; pin a snapshot or lock first", base, sel.Sel.Name, base, mutex)
		}
	})
}

// fieldObj returns the types object of the selected field.
func fieldObj(sel *types.Selection) types.Object { return sel.Obj() }

// rootOf returns the leftmost identifier of a selector chain.
func rootOf(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// freshLocals collects local variables initialized from composite literals
// (c := &Cluster{...}): values still private to the constructor, whose
// guarded fields may be set without the lock.
func freshLocals(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isCompositeLit(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

func isCompositeLit(e ast.Expr) bool {
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = u.X
	}
	_, ok := e.(*ast.CompositeLit)
	return ok
}
