package epochpin_test

import (
	"testing"

	"dimatch/internal/analyzers/analysistest"
	"dimatch/internal/analyzers/epochpin"
)

func TestEpochpin(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), epochpin.Analyzer, "epochfix")
}
