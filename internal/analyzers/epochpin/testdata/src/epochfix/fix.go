// Package epochfix is a miniature cluster for the epochpin fixture: a
// guarded epoch pointer touched with and without its mutex.
package epochfix

import "sync"

type epoch struct{ members []string }

type Cluster struct {
	mu     sync.Mutex
	ep     *epoch // dimatch:guardedby mu
	closed bool   // dimatch:guardedby mu
}

// Members reads live membership without the lock: the invariant epochpin
// exists to catch.
func (c *Cluster) Members() []string {
	return c.ep.members // want `field c\.ep is guarded by c\.mu`
}

// Sloppy writes a guarded field after releasing the lock.
func (c *Cluster) Sloppy() bool {
	c.mu.Lock()
	v := c.closed
	c.mu.Unlock()
	c.ep = nil // want `field c\.ep is guarded by c\.mu`
	return v
}

// Async touches a guarded field from a goroutine: the closure runs under
// its own lock discipline, so the deferred unlock outside does not cover it.
func (c *Cluster) Async() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		_ = c.ep // want `field c\.ep is guarded by c\.mu`
	}()
}

// Close is the conforming shape: deferred unlock covers the write.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
}

// Snapshot is the conforming early-unlock shape: the branch releases and
// returns, and the code after it still holds the lock.
func (c *Cluster) Snapshot() *epoch {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	ep := c.ep
	c.mu.Unlock()
	return ep
}

// installLocked follows the callers-hold-the-lock naming convention.
func (c *Cluster) installLocked(e *epoch) {
	c.ep = e
}

// New writes guarded fields of a value no other goroutine can see yet.
func New() *Cluster {
	c := &Cluster{}
	c.ep = &epoch{}
	c.installLocked(c.ep)
	return c
}
