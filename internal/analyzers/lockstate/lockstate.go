// Package lockstate tracks which sync mutexes are held at each point of a
// function body, for analyzers that enforce lock-discipline invariants
// (lockio, epochpin in cmd/di-lint).
//
// The tracking is a conservative source-order walk, not a full control-flow
// analysis: a Lock() adds the mutex, a same-level Unlock() removes it, a
// deferred Unlock() keeps it held to the end of the function, and nested
// blocks see a copy of the enclosing set so an early-unlock-and-return
// branch does not clear the mutex for the code after it. Function literals
// start empty — a closure or goroutine body runs under its own discipline.
// The approximation errs toward "held", which for deadlock- and
// guarded-field-checking is the safe direction.
package lockstate

import (
	"go/ast"
	"go/types"
)

// Set is the set of held mutexes, keyed by the rendered receiver expression
// ("c.mu", "m.sendMu"). ReadOnly reports whether only the read half is held.
type Set map[string]bool

// Held reports whether the mutex named by expr (e.g. "c.mu") is held.
func (s Set) Held(expr string) bool { return s[expr] }

// clone returns an independent copy.
func (s Set) clone() Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Walk traverses body in source order and calls visit for every expression
// node with the set of mutexes held at that point. visit must not retain the
// set; it is mutated as the walk proceeds.
func Walk(info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held Set)) {
	if body == nil {
		return
	}
	walkStmts(info, body.List, make(Set), visit)
}

// walkStmts processes a statement list against a mutable held set.
func walkStmts(info *types.Info, stmts []ast.Stmt, held Set, visit func(ast.Node, Set)) {
	for _, s := range stmts {
		walkStmt(info, s, held, visit)
	}
}

func walkStmt(info *types.Info, s ast.Stmt, held Set, visit func(ast.Node, Set)) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, lock, ok := mutexOp(info, s.X); ok {
			if lock {
				held[key] = true
			} else {
				delete(held, key)
			}
			return
		}
		visitExprs(info, s.X, held, visit)
	case *ast.DeferStmt:
		// defer x.Unlock() pins x held for the rest of the function.
		if _, lock, ok := mutexOp(info, s.Call); ok && !lock {
			return
		}
		visitExprs(info, s.Call, held, visit)
	case *ast.GoStmt:
		visitExprs(info, s.Call, held, visit)
	case *ast.BlockStmt:
		walkStmts(info, s.List, held.clone(), visit)
	case *ast.IfStmt:
		if s.Init != nil {
			walkStmt(info, s.Init, held, visit)
		}
		visitExprs(info, s.Cond, held, visit)
		walkStmts(info, s.Body.List, held.clone(), visit)
		if s.Else != nil {
			walkStmt(info, s.Else, held.clone(), visit)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			walkStmt(info, s.Init, held, visit)
		}
		if s.Cond != nil {
			visitExprs(info, s.Cond, held, visit)
		}
		if s.Post != nil {
			walkStmt(info, s.Post, held.clone(), visit)
		}
		walkStmts(info, s.Body.List, held.clone(), visit)
	case *ast.RangeStmt:
		visitExprs(info, s.X, held, visit)
		walkStmts(info, s.Body.List, held.clone(), visit)
	case *ast.SwitchStmt:
		if s.Init != nil {
			walkStmt(info, s.Init, held, visit)
		}
		if s.Tag != nil {
			visitExprs(info, s.Tag, held, visit)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					visitExprs(info, e, held, visit)
				}
				walkStmts(info, cc.Body, held.clone(), visit)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			walkStmt(info, s.Init, held, visit)
		}
		walkStmt(info, s.Assign, held, visit)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkStmts(info, cc.Body, held.clone(), visit)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					walkStmt(info, cc.Comm, inner, visit)
				}
				walkStmts(info, cc.Body, inner, visit)
			}
		}
	case *ast.LabeledStmt:
		walkStmt(info, s.Stmt, held, visit)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			visitExprs(info, e, held, visit)
		}
		for _, e := range s.Lhs {
			visitExprs(info, e, held, visit)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			visitExprs(info, e, held, visit)
		}
	case *ast.DeclStmt:
		visitExprs(info, s, held, visit)
	case *ast.IncDecStmt:
		visitExprs(info, s.X, held, visit)
	case *ast.SendStmt:
		visitExprs(info, s.Chan, held, visit)
		visitExprs(info, s.Value, held, visit)
	}
}

// visitExprs reports every node under n with the current held set, walking
// function-literal bodies with a fresh empty set (their code runs under its
// own lock discipline, often on another goroutine).
func visitExprs(info *types.Info, n ast.Node, held Set, visit func(ast.Node, Set)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			walkStmts(info, lit.Body.List, make(Set), visit)
			return false
		}
		if n != nil {
			visit(n, held)
		}
		return true
	})
}

// mutexOp reports whether e is a Lock/RLock (lock=true) or Unlock/RUnlock
// (lock=false) call on a sync.Mutex or sync.RWMutex, and the rendered
// receiver key ("c.mu").
func mutexOp(info *types.Info, e ast.Expr) (key string, lock, ok bool) {
	call, okc := e.(*ast.CallExpr)
	if !okc {
		return "", false, false
	}
	sel, oks := call.Fun.(*ast.SelectorExpr)
	if !oks {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		lock = true
	case "Unlock", "RUnlock":
		lock = false
	default:
		return "", false, false
	}
	if !isSyncMutex(info.TypeOf(sel.X)) {
		return "", false, false
	}
	key = ExprString(sel.X)
	if key == "" {
		return "", false, false
	}
	return key, lock, true
}

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly via
// pointer).
func isSyncMutex(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// ExprString renders a selector chain of identifiers ("c.cache.mu");
// anything more complex (calls, indexes) renders as "".
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := ExprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return ExprString(e.X)
	}
	return ""
}
