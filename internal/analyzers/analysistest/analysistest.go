// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its findings against // want comments, in
// the style of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture file marks each line where a finding is expected:
//
//	bad()  // want `regexp matching the message`
//
// Multiple expectations on one line are written as consecutive quoted
// regexps. Every finding must be wanted and every want must be found.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"dimatch/internal/analyzers/analysis"
)

// TestData returns the calling test's testdata directory.
func TestData() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Join(wd, "testdata")
}

// Run loads each fixture package (a directory under dir/src), applies the
// analyzer, and reports any mismatch between findings and // want
// expectations as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	loader := &fixtureLoader{
		srcRoot: filepath.Join(dir, "src"),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*fixturePkg),
	}
	for _, path := range pkgpaths {
		fp, err := loader.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(loader.fset, fp.files, fp.pkg, fp.info, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, loader.fset, fp.files, diags)
	}
}

// fixturePkg is one type-checked fixture package.
type fixturePkg struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// fixtureLoader type-checks fixture packages, resolving imports first
// against other fixtures under srcRoot and then against the real build's
// export data.
type fixtureLoader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*fixturePkg
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	pkg, info, err := analysis.Check(path, l.fset, files, importerFunc(l.importPkg))
	if err != nil {
		return nil, err
	}
	fp := &fixturePkg{files: files, pkg: pkg, info: info}
	l.pkgs[path] = fp
	return fp, nil
}

func (l *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(path))); err == nil {
		fp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	exports, err := stdExports(path)
	if err != nil {
		return nil, err
	}
	return analysis.ExportImporter(l.fset, exports).Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// stdExports resolves a real (non-fixture) import path and its transitive
// dependencies to export-data files, caching across calls so each test
// binary shells out to the go tool at most once per new path.
var stdExportsCache = struct {
	sync.Mutex
	m map[string]string
}{m: make(map[string]string)}

func stdExports(path string) (map[string]string, error) {
	stdExportsCache.Lock()
	defer stdExportsCache.Unlock()
	if _, ok := stdExportsCache.m[path]; !ok {
		cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.Bytes())
		}
		dec := json.NewDecoder(&stdout)
		for {
			var e struct{ ImportPath, Export string }
			if err := dec.Decode(&e); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if e.Export != "" {
				stdExportsCache.m[e.ImportPath] = e.Export
			}
		}
	}
	out := make(map[string]string, len(stdExportsCache.m))
	for k, v := range stdExportsCache.m {
		out[k] = v
	}
	return out, nil
}

// wantRe matches one quoted or backquoted expectation in a // want comment.
var wantRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// checkWants compares findings against // want comments line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string]map[int][]*expectation) // file -> line -> expectations
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text := c.Text
				i := strings.Index(text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[i+len("// want "):], -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.ReplaceAll(pat, `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expectation)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expectation{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := d.Position(fset)
		found := false
		for _, exp := range wants[pos.Filename][pos.Line] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected finding: %s", pos.Filename, pos.Line, d.Message)
		}
	}

	var missing []string
	for file, lines := range wants {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.matched {
					missing = append(missing, fmt.Sprintf("%s:%d: no finding matched %q", file, line, exp.re))
				}
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}
