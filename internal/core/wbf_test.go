package core

import (
	"testing"

	"dimatch/internal/pattern"
)

func testParams() Params {
	return Params{
		Bits:      1 << 14,
		Hashes:    4,
		Samples:   3,
		Epsilon:   0,
		Tolerance: ToleranceScaled,
		Seed:      7,
	}
}

// buildPaperFilter encodes the paper's running example: global {3,4,5} with
// locals {1,2,3} and {2,2,2}.
func buildPaperFilter(t *testing.T, p Params) *Filter {
	t.Helper()
	enc, err := NewEncoder(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}}
	if err := enc.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	return enc.Filter()
}

func TestFilterWeightTable(t *testing.T) {
	f := buildPaperFilter(t, testParams())
	ws := f.Weights()
	if len(ws) != 3 {
		t.Fatalf("weight table has %d rows, want 3 (= 2^2 - 1 combinations)", len(ws))
	}
	// Numerators: {1,2,3} -> 6, {2,2,2} -> 6, both -> 12; denominator 12.
	byMask := make(map[pattern.Subset]WeightEntry, 3)
	for _, w := range ws {
		byMask[w.Mask] = w
		if w.Denominator != 12 {
			t.Fatalf("denominator = %d, want 12", w.Denominator)
		}
		if w.Query != 1 {
			t.Fatalf("query = %d, want 1", w.Query)
		}
	}
	if byMask[0b01].Numerator != 6 || byMask[0b10].Numerator != 6 || byMask[0b11].Numerator != 12 {
		t.Fatalf("numerators wrong: %+v", byMask)
	}
	if got := byMask[0b11].Value(); got != 1.0 {
		t.Fatalf("full combination weight = %v, want 1", got)
	}
	if got := byMask[0b01].Value(); got != 0.5 {
		t.Fatalf("local weight = %v, want 0.5", got)
	}
}

func TestFilterProbeKnownValues(t *testing.T) {
	f := buildPaperFilter(t, testParams())
	// Accumulated forms: {1,3,6}, {2,4,6}, {3,7,12}; with Samples=3 and
	// length 3 every position is sampled.
	ids, ok := f.probe(0, 1, nil)
	if !ok || len(ids) == 0 {
		t.Fatal("accumulated value 1 at slot 0 should be present")
	}
	if _, ok := f.probe(0, 100, nil); ok {
		t.Fatal("value 100 should be absent")
	}
}

func TestFilterZeroWeightCombinationSkipped(t *testing.T) {
	p := testParams()
	enc, err := NewEncoder(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Second local is all zeros: combinations {1} and {0,1} have equal
	// patterns; {1} alone has numerator 0 and must be skipped.
	q := Query{ID: 9, Locals: []pattern.Pattern{{1, 2}, {0, 0}}}
	if err := enc.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	for _, w := range enc.Filter().Weights() {
		if w.Numerator == 0 {
			t.Fatalf("zero-weight combination %s made it into the table", w.Mask)
		}
	}
}

func TestFilterRoundTripThroughParts(t *testing.T) {
	p := testParams()
	p.Epsilon = 1
	f := buildPaperFilter(t, p)
	bitIdx, ids := f.Slots()
	g, err := FromParts(p, f.Length(), f.Words(), bitIdx, ids, f.Weights(), f.Inserted())
	if err != nil {
		t.Fatal(err)
	}
	// The reconstructed filter must agree with the original on every probe
	// over a sweep covering present and absent values.
	for slot := 0; slot < 3; slot++ {
		for v := int64(0); v < 40; v++ {
			wa, oka := f.probe(slot, v, nil)
			wb, okb := g.probe(slot, v, nil)
			if oka != okb || len(wa) != len(wb) {
				t.Fatalf("probe(%d,%d) diverged after round trip", slot, v)
			}
			for i := range wa {
				if wa[i] != wb[i] {
					t.Fatalf("probe(%d,%d) weights diverged", slot, v)
				}
			}
		}
	}
	if g.Inserted() != f.Inserted() {
		t.Fatal("inserted count lost")
	}
}

func TestFromPartsRejectsCorruption(t *testing.T) {
	p := testParams()
	f := buildPaperFilter(t, p)
	bitIdx, ids := f.Slots()
	words := f.Words()
	weights := f.Weights()

	tests := []struct {
		name   string
		mutate func(bi []uint64, id [][]WeightID, ws []WeightEntry) ([]uint64, [][]WeightID, []WeightEntry)
	}{
		{
			name: "slot count mismatch",
			mutate: func(bi []uint64, id [][]WeightID, ws []WeightEntry) ([]uint64, [][]WeightID, []WeightEntry) {
				return bi[:len(bi)-1], id, ws
			},
		},
		{
			name: "dangling pointer",
			mutate: func(bi []uint64, id [][]WeightID, ws []WeightEntry) ([]uint64, [][]WeightID, []WeightEntry) {
				id[0] = []WeightID{99}
				return bi, id, ws
			},
		},
		{
			name: "unsorted list",
			mutate: func(bi []uint64, id [][]WeightID, ws []WeightEntry) ([]uint64, [][]WeightID, []WeightEntry) {
				id[0] = []WeightID{1, 0}
				return bi, id, ws
			},
		},
		{
			name: "empty list",
			mutate: func(bi []uint64, id [][]WeightID, ws []WeightEntry) ([]uint64, [][]WeightID, []WeightEntry) {
				id[0] = nil
				return bi, id, ws
			},
		},
		{
			name: "slot on unset bit",
			mutate: func(bi []uint64, id [][]WeightID, ws []WeightEntry) ([]uint64, [][]WeightID, []WeightEntry) {
				// Find an unset bit and claim a slot there.
				for cand := uint64(0); cand < p.Bits; cand++ {
					used := false
					for _, b := range bi {
						if b == cand {
							used = true
							break
						}
					}
					if !used {
						bi[0] = cand
						break
					}
				}
				return bi, id, ws
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			bi := append([]uint64(nil), bitIdx...)
			id := make([][]WeightID, len(ids))
			for i := range ids {
				id[i] = append([]WeightID(nil), ids[i]...)
			}
			ws := append([]WeightEntry(nil), weights...)
			bi, id, ws = tt.mutate(bi, id, ws)
			if _, err := FromParts(p, f.Length(), words, bi, id, ws, f.Inserted()); err == nil {
				t.Fatal("expected corruption to be rejected")
			}
		})
	}
}

func TestFilterSizeBytes(t *testing.T) {
	f := buildPaperFilter(t, testParams())
	if f.SizeBytes() <= f.Params().Bits/8 {
		t.Fatal("SizeBytes should exceed the raw bit array (slots + weights)")
	}
}

func TestWeightLookup(t *testing.T) {
	f := buildPaperFilter(t, testParams())
	w, err := f.Weight(0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Denominator != 12 {
		t.Fatalf("weight 0 = %+v", w)
	}
	if _, err := f.Weight(WeightID(len(f.Weights()))); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestIntersectSorted(t *testing.T) {
	tests := []struct {
		name string
		a, b []WeightID
		want []WeightID
	}{
		{name: "disjoint", a: []WeightID{1, 3}, b: []WeightID{2, 4}, want: []WeightID{}},
		{name: "subset", a: []WeightID{1, 2, 3}, b: []WeightID{2}, want: []WeightID{2}},
		{name: "identical", a: []WeightID{5, 9}, b: []WeightID{5, 9}, want: []WeightID{5, 9}},
		{name: "empty a", a: nil, b: []WeightID{1}, want: []WeightID{}},
		{name: "interleaved", a: []WeightID{1, 4, 6, 9}, b: []WeightID{0, 4, 9, 12}, want: []WeightID{4, 9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := intersectSorted(append([]WeightID(nil), tt.a...), tt.b)
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestNewFilterValidation(t *testing.T) {
	if _, err := newFilter(Params{}, 3); err == nil {
		t.Fatal("expected invalid params error")
	}
	if _, err := newFilter(testParams(), 0); err == nil {
		t.Fatal("expected invalid length error")
	}
}
