package core

import (
	"fmt"

	"dimatch/internal/bloom"
	"dimatch/internal/pattern"
)

// Encoder builds a Weighted Bloom Filter from query pattern sets at the
// data center side — Algorithm 1 of the paper:
//
//  1. represent each pattern in accumulated form (Eq. 3),
//  2. enumerate all 2^e - 1 combinations of the query's local patterns,
//  3. assign each combination its exact weight numerator,
//  4. sample b points per combination and hash every value in the
//     ε-tolerance band into the WBF, attaching the weight pointer.
type Encoder struct {
	params  Params
	length  int
	sample  []int
	filter  *Filter
	queries map[QueryID]bool
	seen    map[int64]struct{} // distinct hashed keys, for the FP model
	sealed  bool
}

// NewEncoder returns an encoder for patterns of the given time-series
// length.
func NewEncoder(params Params, patternLength int) (*Encoder, error) {
	f, err := newFilter(params, patternLength)
	if err != nil {
		return nil, err
	}
	return &Encoder{
		params:  f.params,
		length:  patternLength,
		sample:  f.sampleIdx,
		filter:  f,
		queries: make(map[QueryID]bool),
		seen:    make(map[int64]struct{}),
	}, nil
}

// AddQuery hashes one query pattern set into the filter. Query IDs must be
// unique within an encoder.
func (e *Encoder) AddQuery(q Query) error {
	if e.sealed {
		return fmt.Errorf("core: encoder already sealed by Filter()")
	}
	if err := q.Validate(); err != nil {
		return err
	}
	if q.Length() != e.length {
		return fmt.Errorf("core: query %d has length %d, encoder wants %d", q.ID, q.Length(), e.length)
	}
	if e.queries[q.ID] {
		return fmt.Errorf("core: duplicate query id %d", q.ID)
	}
	e.queries[q.ID] = true

	global, err := q.Global()
	if err != nil {
		return err
	}
	denom := global.Sum()
	subsets, err := pattern.EnumerateSubsets(len(q.Locals))
	if err != nil {
		return err
	}
	for _, mask := range subsets {
		num, err := pattern.WeightNumerator(q.Locals, mask)
		if err != nil {
			return err
		}
		if num == 0 {
			// A zero-sum combination (e.g. a local with no activity) carries
			// weight 0; hashing it would let empty candidate patterns match.
			continue
		}
		id := e.filter.addWeight(WeightEntry{
			Query:       q.ID,
			Mask:        mask,
			Numerator:   num,
			Denominator: denom,
		})
		combined, err := pattern.Combine(q.Locals, mask)
		if err != nil {
			return err
		}
		if err := e.forEachSampledValue(combined, func(slot int, value int64) {
			e.seen[e.filter.key(slot, value)] = struct{}{}
			e.filter.insert(slot, value, id)
		}); err != nil {
			return err
		}
	}
	return nil
}

// forEachSampledValue accumulates p, samples it and yields every value in
// the tolerance band of every sampled point.
func (e *Encoder) forEachSampledValue(p pattern.Pattern, yield func(slot int, value int64)) error {
	acc := p.Accumulate()
	vals, err := acc.SampleAt(e.sample)
	if err != nil {
		return err
	}
	for slot, v := range vals {
		tol := e.params.band(e.sample[slot])
		lo := v - tol
		if lo < 0 {
			lo = 0 // accumulated candidate values are never negative
		}
		for u := lo; u <= v+tol; u++ {
			yield(slot, u)
		}
	}
	return nil
}

// Filter seals the encoder and returns the built WBF. Further AddQuery
// calls fail: the filter has been (conceptually) disseminated.
func (e *Encoder) Filter() *Filter {
	e.sealed = true
	e.filter.distinct = uint64(len(e.seen))
	return e.filter
}

// QueryCount returns the number of queries encoded so far.
func (e *Encoder) QueryCount() int { return len(e.queries) }

// EstimateInsertions predicts the number of hashed values for sizing a
// filter before encoding: per query, (2^e - 1) combinations × b samples ×
// the mean band width. The estimate is exact for ToleranceAbsolute and an
// upper bound for ToleranceScaled (bands are clipped at zero).
func EstimateInsertions(p Params, patternLength int, queries []Query) (uint64, error) {
	p = p.withDefaults()
	idx, err := pattern.SampleIndexes(patternLength, p.Samples)
	if err != nil {
		return 0, err
	}
	var perPattern uint64
	for _, g := range idx {
		perPattern += uint64(2*p.band(g) + 1)
	}
	var total uint64
	for _, q := range queries {
		if len(q.Locals) == 0 || len(q.Locals) > pattern.MaxLocals {
			return 0, fmt.Errorf("core: query %d has %d locals", q.ID, len(q.Locals))
		}
		combos := uint64(1)<<uint(len(q.Locals)) - 1
		total += combos * perPattern
	}
	return total, nil
}

// SizedParams returns Params sized for the given queries at the target
// false-positive rate, preserving the pipeline knobs of base.
func SizedParams(base Params, patternLength int, queries []Query, targetFP float64) (Params, error) {
	base = base.withDefaults()
	n, err := EstimateInsertions(base, patternLength, queries)
	if err != nil {
		return Params{}, err
	}
	m, k := bloom.OptimalParams(n, targetFP)
	base.Bits = m
	base.Hashes = k
	return base, nil
}

// BFEncoder builds a plain Bloom filter with the identical representation
// pipeline (accumulation, combinations, sampling, ε bands) but no weights —
// the paper's BF baseline ("utilize a Bloom Filter in DI-matching, instead
// of WBF").
type BFEncoder struct {
	inner  *Encoder
	filter *bloom.Filter
}

// NewBFEncoder mirrors NewEncoder for the baseline.
func NewBFEncoder(params Params, patternLength int) (*BFEncoder, error) {
	inner, err := NewEncoder(params, patternLength)
	if err != nil {
		return nil, err
	}
	bf, err := bloom.New(inner.params.Bits, inner.params.Hashes, inner.params.Seed)
	if err != nil {
		return nil, err
	}
	return &BFEncoder{inner: inner, filter: bf}, nil
}

// AddQuery hashes one query pattern set into the baseline filter.
func (e *BFEncoder) AddQuery(q Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	if q.Length() != e.inner.length {
		return fmt.Errorf("core: query %d has length %d, encoder wants %d", q.ID, q.Length(), e.inner.length)
	}
	subsets, err := pattern.EnumerateSubsets(len(q.Locals))
	if err != nil {
		return err
	}
	for _, mask := range subsets {
		num, err := pattern.WeightNumerator(q.Locals, mask)
		if err != nil {
			return err
		}
		if num == 0 {
			continue
		}
		combined, err := pattern.Combine(q.Locals, mask)
		if err != nil {
			return err
		}
		if err := e.inner.forEachSampledValue(combined, func(slot int, value int64) {
			e.filter.Add(e.inner.filter.key(slot, value))
		}); err != nil {
			return err
		}
	}
	return nil
}

// Filter returns the built baseline filter.
func (e *BFEncoder) Filter() *bloom.Filter { return e.filter }

// SampleIndexes returns the sample positions, identical to the WBF's.
func (e *BFEncoder) SampleIndexes() []int { return e.inner.sample }
