package core

import (
	"fmt"
	"sort"
)

// PersonID identifies an object (mobile phone) across the whole network.
type PersonID uint64

// Report is one base station's verdict for one person: the weight pointers
// that survived Algorithm 2 there. Stations send only (person, weights) —
// never the pattern itself — which is the source of the scheme's
// communication savings.
type Report struct {
	Person    PersonID
	WeightIDs []WeightID
}

// Result is one ranked answer for a query.
type Result struct {
	Person PersonID
	// Numerator and Denominator give the exact aggregated weight; a person
	// whose local matches partition the query's locals scores exactly 1.
	Numerator   int64
	Denominator int64
	// Stations is the number of base stations that reported the person.
	Stations int
}

// Score returns the aggregated weight as a float in (0, 1].
func (r Result) Score() float64 {
	if r.Denominator == 0 {
		return 0
	}
	return float64(r.Numerator) / float64(r.Denominator)
}

// Aggregator implements Algorithm 3 at the data center: it sums reported
// weights per person and query, deletes persons whose weight sum exceeds 1
// (their aggregate pattern must differ from the query's global), ranks the
// rest by weight descending and returns the top-K.
//
// An aggregation can span several filters: a batched search resolves batch
// replies against the batch's combined weight table and legacy per-query
// replies against each per-query table (AddFrom). The accumulation merges
// cleanly because a weight's meaning — this combination's share of this
// query's global sum — does not depend on which filter carried it.
type Aggregator struct {
	weights []WeightEntry
	// perQuery[q][person] accumulates the weight numerator and the station
	// count for one person under query q.
	perQuery map[QueryID]map[PersonID]*personAgg
	denoms   map[QueryID]int64
	// replicated, when set, marks persons whose stations hold full copies of
	// one pattern rather than complementary pieces; see SetReplicated.
	replicated func(PersonID) bool
}

type personAgg struct {
	numerator int64
	stations  int
}

// NewAggregator returns an aggregator resolving weight pointers against the
// given filter's weight table.
func NewAggregator(f *Filter) *Aggregator {
	a := NewBatchAggregator()
	a.weights = f.Weights()
	for _, w := range a.weights {
		a.denoms[w.Query] = w.Denominator
	}
	return a
}

// NewBatchAggregator returns an aggregator with no default weight table:
// every report must be resolved explicitly with AddFrom. A batched search
// uses one of these to merge reports that probed different filters.
func NewBatchAggregator() *Aggregator {
	return &Aggregator{
		perQuery: make(map[QueryID]map[PersonID]*personAgg),
		denoms:   make(map[QueryID]int64),
	}
}

// SetReplicated marks which persons are replicated: their stations hold full
// copies of one pattern (a placement layer's replicas), not the
// complementary local pieces the paper's summation model assumes. For a
// replicated person, reports from different stations describe the same data,
// so their weights must not be summed — the aggregation keeps the single
// best (highest-numerator) report instead, and a replica that fails
// mid-fan-out is covered by any surviving replica at full score. Stations
// still counts every reporting station, so Result.Stations doubles as the
// observed replica count. A nil predicate (the default) restores the pure
// summation model.
func (a *Aggregator) SetReplicated(pred func(PersonID) bool) {
	a.replicated = pred
}

// Add ingests one station report, resolving pointers against the filter the
// aggregator was built from.
func (a *Aggregator) Add(r Report) error { return a.AddFrom(a.weights, r) }

// AddFrom ingests one station report, resolving its weight pointers against
// the given table — the table of whichever filter the reporting station
// probed. When several pointers of the same query survive for one station
// pattern (the pattern is within tolerance of more than one combination),
// the smallest numerator is credited: crediting more than the pattern's
// certain share could push a true match's sum past 1 and delete it, while
// under-crediting only lowers its rank (DESIGN.md D4).
func (a *Aggregator) AddFrom(table []WeightEntry, r Report) error {
	// minPerQuery collects the minimum numerator per query in this report.
	var minPerQuery map[QueryID]int64
	for _, id := range r.WeightIDs {
		if int(id) >= len(table) {
			return fmt.Errorf("core: report for person %d has dangling weight pointer %d", r.Person, id)
		}
		w := table[id]
		if minPerQuery == nil {
			minPerQuery = make(map[QueryID]int64, 1)
		}
		if cur, ok := minPerQuery[w.Query]; !ok || w.Numerator < cur {
			minPerQuery[w.Query] = w.Numerator
		}
		// Denominators are per query, not per filter — every table that
		// mentions a query agrees on its global sum.
		a.denoms[w.Query] = w.Denominator
	}
	dedup := a.replicated != nil && a.replicated(r.Person)
	for q, num := range minPerQuery {
		persons := a.perQuery[q]
		if persons == nil {
			persons = make(map[PersonID]*personAgg)
			a.perQuery[q] = persons
		}
		agg := persons[r.Person]
		if agg == nil {
			agg = &personAgg{}
			persons[r.Person] = agg
		}
		if dedup {
			// Replicas report the same underlying pattern: the highest score
			// wins, duplicates are not summed (which would push a true match
			// past 1 and delete it under Algorithm 3).
			if num > agg.numerator {
				agg.numerator = num
			}
		} else {
			agg.numerator += num
		}
		agg.stations++
	}
	return nil
}

// Merge folds one already-aggregated partial result into the accumulation —
// the root coordinator absorbing a region's raw per-person sums (wire
// KindRouteReply). The fold mirrors AddFrom's semantics one tier up: a
// non-replicated person's partials sum (stations hold complementary
// pieces, and addition is associative across the region partition), a
// replicated person keeps the single best partial (regions hold independent
// copies of the same data — summing would push a true match past 1), and
// the station count always accumulates. The partial's denominator installs
// the query's global sum exactly as a weight table would.
func (a *Aggregator) Merge(q QueryID, r Result) {
	if r.Denominator != 0 {
		a.denoms[q] = r.Denominator
	}
	persons := a.perQuery[q]
	if persons == nil {
		persons = make(map[PersonID]*personAgg)
		a.perQuery[q] = persons
	}
	agg := persons[r.Person]
	if agg == nil {
		agg = &personAgg{}
		persons[r.Person] = agg
	}
	if a.replicated != nil && a.replicated(r.Person) {
		if r.Numerator > agg.numerator {
			agg.numerator = r.Numerator
		}
	} else {
		agg.numerator += r.Numerator
	}
	agg.stations += r.Stations
}

// Candidates returns the number of distinct persons currently accumulated
// for a query (before the sum > 1 deletion).
func (a *Aggregator) Candidates(q QueryID) int {
	return len(a.perQuery[q])
}

// TopK finalizes one query with the paper's strict Algorithm 3: persons
// with weight sum exceeding the denominator are deleted, the rest are
// ranked by weight descending (person ID ascending on ties, for
// determinism) and the first k returned. k <= 0 means no limit.
func (a *Aggregator) TopK(q QueryID, k int) []Result {
	results := a.Results(q)
	kept := results[:0]
	for _, r := range results {
		if r.Numerator > r.Denominator {
			continue // Algorithm 3 line 3: over-matched, aggregate differs
		}
		kept = append(kept, r)
	}
	results = kept
	sort.Slice(results, func(i, j int) bool {
		if results[i].Numerator != results[j].Numerator {
			return results[i].Numerator > results[j].Numerator
		}
		return results[i].Person < results[j].Person
	})
	if k > 0 && len(results) > k {
		results = results[:k]
	}
	return results
}

// Results returns every accumulated candidate for a query, unordered and
// unfiltered — including persons whose weight sum exceeds 1. Callers that
// tolerate ε-induced attribution error (a piece crediting the neighbouring
// combination) can band-filter around 1 instead of applying the strict
// deletion.
func (a *Aggregator) Results(q QueryID) []Result {
	denom := a.denoms[q]
	persons := a.perQuery[q]
	results := make([]Result, 0, len(persons))
	for p, agg := range persons {
		results = append(results, Result{
			Person:      p,
			Numerator:   agg.numerator,
			Denominator: denom,
			Stations:    agg.stations,
		})
	}
	return results
}

// Queries returns the query IDs that received at least one report, in
// ascending order.
func (a *Aggregator) Queries() []QueryID {
	out := make([]QueryID, 0, len(a.perQuery))
	for q := range a.perQuery {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
