package core

import (
	"fmt"
	"sort"

	"dimatch/internal/bitset"
	"dimatch/internal/hash"
	"dimatch/internal/pattern"
)

// WeightID is a pointer into a Filter's weight table. The paper's WBF
// attaches "a pointer pointing to the weight of corresponding hashed values"
// to each set bit; we realize the pointer as a table index so weights ship
// once, not per bit.
type WeightID uint32

// WeightEntry is one row of the weight table: the exact weight of one
// combination of one query's local patterns, stored as an integer fraction
// Numerator/Denominator (see DESIGN.md decision D2). The denominator is the
// query's global value sum, so the full combination has weight exactly 1 and
// weights of disjoint combinations add.
type WeightEntry struct {
	Query       QueryID
	Mask        pattern.Subset
	Numerator   int64
	Denominator int64
}

// Value returns the weight as a float in (0, 1], for reporting only — the
// matching pipeline compares integer numerators.
func (w WeightEntry) Value() float64 {
	if w.Denominator == 0 {
		return 0
	}
	return float64(w.Numerator) / float64(w.Denominator)
}

// Filter is the Weighted Bloom Filter: a bit array in which every set bit
// carries the list of weight pointers of the values that set it, plus the
// weight table those pointers index.
type Filter struct {
	params    Params
	length    int   // time-series length the filter was built for
	sampleIdx []int // deterministic sample positions, shared with stations
	bits      *bitset.Set
	slots     map[uint64][]WeightID // bit index -> sorted unique weight IDs
	weights   []WeightEntry
	family    hash.Family
	inserted  uint64 // total value insertions (with band expansion)
	distinct  uint64 // distinct hashed keys (what the FP model sees)
	keys      keyer
}

// keyer maps (sample slot, accumulated value) pairs to hashed elements. It
// is shared by the WBF and the BF baseline so both hash identically.
type keyer struct {
	salted bool
	salts  []uint64
}

func newKeyer(p Params, slots int) keyer {
	k := keyer{salted: p.PositionSalted}
	if !k.salted {
		return k
	}
	k.salts = make([]uint64, slots)
	for i := range k.salts {
		k.salts[i] = hash.Mix64(p.Seed ^ (uint64(i+1) * 0x8f3c9d1b5a7e42d1))
	}
	return k
}

// key returns the hashed element for a value observed at a sample slot.
// Without position salting (the paper's scheme) the value is hashed as-is:
// the time information lives purely in the accumulation transform. With
// salting, each sample slot gets its own key space.
func (k keyer) key(slot int, value int64) int64 {
	if !k.salted {
		return value
	}
	return int64(hash.Mix64(uint64(value)) ^ k.salts[slot])
}

// newFilter allocates an empty filter; used by the Encoder.
func newFilter(p Params, length int) (*Filter, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if length <= 0 {
		return nil, fmt.Errorf("core: filter pattern length %d, want > 0", length)
	}
	idx, err := pattern.SampleIndexes(length, p.Samples)
	if err != nil {
		return nil, err
	}
	return &Filter{
		params:    p,
		length:    length,
		sampleIdx: idx,
		bits:      bitset.New(p.Bits),
		slots:     make(map[uint64][]WeightID),
		family:    hash.NewFamily(p.Seed, p.Hashes, p.Bits),
		keys:      newKeyer(p, len(idx)),
	}, nil
}

// key maps a (sample slot, accumulated value) pair to the hashed element.
func (f *Filter) key(slot int, value int64) int64 {
	return f.keys.key(slot, value)
}

// addWeight appends a weight entry and returns its pointer.
func (f *Filter) addWeight(e WeightEntry) WeightID {
	f.weights = append(f.weights, e)
	return WeightID(len(f.weights) - 1)
}

// insert hashes one value into the filter, attaching the weight pointer to
// every bit it sets or finds set.
func (f *Filter) insert(slot int, value int64, id WeightID) {
	var buf [16]uint64
	for _, idx := range f.family.Indexes(f.key(slot, value), buf[:0]) {
		f.bits.Set(idx)
		list := f.slots[idx]
		// Weight IDs are assigned in increasing order during encoding, so an
		// append keeps the list sorted; skip the duplicate produced when a
		// band inserts the same bit twice for one combination.
		if n := len(list); n == 0 || list[n-1] != id {
			f.slots[idx] = append(list, id)
		}
	}
	f.inserted++
}

// probe looks one value up. It returns (nil, false) if any bit is unset —
// the value is definitely absent — and otherwise the sorted intersection of
// the weight-pointer lists across the k bits: the weights every probed bit
// agrees on.
//
//dimatch:noalloc
func (f *Filter) probe(slot int, value int64, scratch []WeightID) ([]WeightID, bool) {
	var buf [16]uint64
	indexes := f.family.Indexes(f.key(slot, value), buf[:0])
	for _, idx := range indexes {
		if !f.bits.Test(idx) {
			return nil, false
		}
	}
	out := scratch[:0]
	out = append(out, f.slots[indexes[0]]...)
	for _, idx := range indexes[1:] {
		out = intersectSorted(out, f.slots[idx])
		if len(out) == 0 {
			// All bits set but no common weight: a hash-collision artifact;
			// the WBF rejects it where a plain BF would accept.
			return nil, false
		}
	}
	return out, true
}

// intersectSorted intersects two ascending WeightID slices in place of a,
// returning the (possibly shortened) result.
//
//dimatch:noalloc
func intersectSorted(a, b []WeightID) []WeightID {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Params returns the filter's parameters.
func (f *Filter) Params() Params { return f.params }

// Length returns the time-series length the filter encodes.
func (f *Filter) Length() int { return f.length }

// SampleIndexes returns the sample positions stations must probe. Callers
// must not mutate the returned slice.
func (f *Filter) SampleIndexes() []int { return f.sampleIdx }

// Weights returns the weight table. Callers must not mutate it.
func (f *Filter) Weights() []WeightEntry { return f.weights }

// Weight returns the entry for id, or an error for a dangling pointer.
func (f *Filter) Weight(id WeightID) (WeightEntry, error) {
	if int(id) >= len(f.weights) {
		return WeightEntry{}, fmt.Errorf("core: weight id %d out of range [0,%d)", id, len(f.weights))
	}
	return f.weights[id], nil
}

// Inserted returns the number of value insertions performed, including band
// expansion (the paper's n = a·b scaled by the ε bands).
func (f *Filter) Inserted() uint64 { return f.inserted }

// DistinctKeys returns the number of distinct hashed keys — the n of the
// false-positive model (overlapping ε bands and repeated combination values
// insert the same key many times but set bits once).
func (f *Filter) DistinctKeys() uint64 {
	if f.distinct == 0 {
		return f.inserted // reconstructed filters fall back to the upper bound
	}
	return f.distinct
}

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 { return f.bits.FillRatio() }

// Words exposes the bit array for serialization.
func (f *Filter) Words() []uint64 { return f.bits.Words() }

// Slots returns the bit->weight-pointer map in a deterministic, sorted form
// for serialization: parallel slices of bit indexes (ascending) and their
// pointer lists.
func (f *Filter) Slots() (bitIdx []uint64, ids [][]WeightID) {
	bitIdx = make([]uint64, 0, len(f.slots))
	for idx := range f.slots {
		bitIdx = append(bitIdx, idx)
	}
	sort.Slice(bitIdx, func(i, j int) bool { return bitIdx[i] < bitIdx[j] })
	ids = make([][]WeightID, len(bitIdx))
	for i, idx := range bitIdx {
		ids[i] = append([]WeightID(nil), f.slots[idx]...)
	}
	return bitIdx, ids
}

// SizeBytes returns the approximate in-memory footprint: bit array, slot
// lists (4 bytes per pointer + 12 bytes per occupied bit for the index and
// list header) and weight table rows (16 bytes of payload each). Used by the
// storage- and communication-cost experiments.
func (f *Filter) SizeBytes() uint64 {
	size := f.bits.SizeBytes()
	for _, list := range f.slots {
		size += 12 + 4*uint64(len(list))
	}
	size += 16 * uint64(len(f.weights))
	return size
}

// FromParts reconstructs a Filter from serialized state, validating that
// slot lists are sorted, unique, in range and sit on set bits.
func FromParts(p Params, length int, words []uint64, bitIdx []uint64, ids [][]WeightID, weights []WeightEntry, inserted uint64) (*Filter, error) {
	f, err := newFilter(p, length)
	if err != nil {
		return nil, err
	}
	bits, err := bitset.FromWords(words, p.Bits)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	f.bits = bits
	if len(bitIdx) != len(ids) {
		return nil, fmt.Errorf("core: %d slot indexes but %d pointer lists", len(bitIdx), len(ids))
	}
	if set := bits.Count(); set != uint64(len(bitIdx)) {
		return nil, fmt.Errorf("core: %d set bits but %d slot lists", set, len(bitIdx))
	}
	f.weights = append([]WeightEntry(nil), weights...)
	f.inserted = inserted
	for i, idx := range bitIdx {
		if idx >= p.Bits {
			return nil, fmt.Errorf("core: slot index %d out of range", idx)
		}
		if !bits.Test(idx) {
			return nil, fmt.Errorf("core: slot list on unset bit %d", idx)
		}
		list := ids[i]
		if len(list) == 0 {
			return nil, fmt.Errorf("core: empty pointer list at bit %d", idx)
		}
		for j, id := range list {
			if int(id) >= len(weights) {
				return nil, fmt.Errorf("core: dangling weight pointer %d at bit %d", id, idx)
			}
			if j > 0 && list[j-1] >= id {
				return nil, fmt.Errorf("core: unsorted pointer list at bit %d", idx)
			}
		}
		f.slots[idx] = append([]WeightID(nil), list...)
	}
	return f, nil
}
