// Package core implements the paper's primary contribution: the Weighted
// Bloom Filter (WBF) and the three DI-matching algorithms built on it —
// query encoding at the data center (Algorithm 1), local pattern matching at
// base stations (Algorithm 2) and weight aggregation / similarity ranking
// back at the data center (Algorithm 3).
package core

import (
	"errors"
	"fmt"

	"dimatch/internal/bloom"
)

// ToleranceMode selects how the per-interval tolerance ε of Eq. 2 is mapped
// into the accumulated domain when "all possible approximate values" are
// hashed (Algorithm 1). See DESIGN.md decision D1.
type ToleranceMode int

const (
	// ToleranceScaled hashes the band ±ε·(g+1) around the accumulated value
	// at original interval g. Any pattern within per-interval ε of a query
	// combination stays inside this band at every sample, so matching has no
	// false negatives with respect to Eq. 2. This is the default.
	ToleranceScaled ToleranceMode = iota + 1
	// ToleranceAbsolute hashes the flat band ±ε at every sample. Cheaper and
	// tighter, but a pattern can drift beyond ±ε in accumulated space while
	// honouring Eq. 2 per interval, so false negatives become possible.
	// Kept as an ablation of D1.
	ToleranceAbsolute
)

func (m ToleranceMode) String() string {
	switch m {
	case ToleranceScaled:
		return "scaled"
	case ToleranceAbsolute:
		return "absolute"
	default:
		return fmt.Sprintf("ToleranceMode(%d)", int(m))
	}
}

// Params carries every knob of the WBF pipeline. The notation mirrors the
// paper's Table I: m filter bits, k hash functions, b sample points, ε
// approximation tolerance.
type Params struct {
	// Bits is m, the filter length in bits.
	Bits uint64
	// Hashes is k, the number of hash functions.
	Hashes int
	// Samples is b, the number of sampled points per pattern. The paper's
	// convergence study settles on 12.
	Samples int
	// Epsilon is ε, the per-interval matching tolerance of Eq. 2 (ε = 0
	// demands exact matching).
	Epsilon int64
	// Tolerance selects the accumulated-domain interpretation of ε.
	// Zero value means ToleranceScaled.
	Tolerance ToleranceMode
	// Seed fixes the hash family so the data center and every base station
	// derive identical bit positions.
	Seed uint64
	// PositionSalted is an extension beyond the paper: when true, hashed
	// keys are salted with their sample position so a value inserted for
	// sample j can only satisfy probes of sample j. This removes the
	// cross-position false positives the paper tolerates. Off by default to
	// match the published scheme; measured as an ablation.
	PositionSalted bool
}

// DefaultSamples is the paper's chosen b after the convergence study
// (Section V-B): "when the number of sample values is 12, the accuracy rates
// ... become stable".
const DefaultSamples = 12

// DefaultParams returns parameters sized for roughly expectedValues
// insertions at a 1% analytic false-positive rate, with the paper's b = 12
// and k from the optimal Bloom sizing.
func DefaultParams(expectedValues uint64) Params {
	m, k := bloom.OptimalParams(expectedValues, 0.01)
	return Params{
		Bits:      m,
		Hashes:    k,
		Samples:   DefaultSamples,
		Epsilon:   0,
		Tolerance: ToleranceScaled,
		Seed:      0x9d1c5d1f2b3a4e57,
	}
}

// Sanity ceilings on parameters that size allocations or per-probe work.
// Parameters arrive over the wire (a filter ships its Params in every query
// frame), so values far beyond any useful configuration are treated as
// corruption rather than honored: Hashes bounds the loop every probe runs,
// and Samples bounds the sample-index table a filter allocates.
const (
	MaxHashes  = 512
	MaxSamples = 1 << 16
)

// Validate checks the parameter set and returns a descriptive error for the
// first violation found.
func (p Params) Validate() error {
	if p.Bits == 0 {
		return errors.New("core: Params.Bits must be positive")
	}
	if p.Hashes <= 0 || p.Hashes > MaxHashes {
		return fmt.Errorf("core: Params.Hashes = %d, want 1..%d", p.Hashes, MaxHashes)
	}
	if p.Samples <= 0 || p.Samples > MaxSamples {
		return fmt.Errorf("core: Params.Samples = %d, want 1..%d", p.Samples, MaxSamples)
	}
	if p.Epsilon < 0 {
		return fmt.Errorf("core: Params.Epsilon = %d, want >= 0", p.Epsilon)
	}
	switch p.Tolerance {
	case ToleranceScaled, ToleranceAbsolute:
	default:
		return fmt.Errorf("core: unknown tolerance mode %d", int(p.Tolerance))
	}
	return nil
}

// withDefaults fills zero-value fields that have well-defined defaults.
func (p Params) withDefaults() Params {
	if p.Tolerance == 0 {
		p.Tolerance = ToleranceScaled
	}
	if p.Samples == 0 {
		p.Samples = DefaultSamples
	}
	return p
}

// band returns the inclusive half-width of the hashed value band for a
// sample at original interval index g.
func (p Params) band(g int) int64 {
	switch p.Tolerance {
	case ToleranceAbsolute:
		return p.Epsilon
	default:
		return p.Epsilon * int64(g+1)
	}
}
