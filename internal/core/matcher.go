package core

import (
	"fmt"
	"sort"

	"dimatch/internal/bloom"
	"dimatch/internal/pattern"
)

// Matcher runs Algorithm 2 at a base station: it converts a resident local
// pattern to accumulated form, samples the same b positions the data center
// sampled, probes the received WBF and reports the pattern's weight(s) iff
// every sampled point is present with a common weight.
//
// All per-pattern scratch (the sampled accumulated values, the candidate
// pointer sets) lives on the Matcher and is reused across Match calls, so a
// station walking thousands of residents allocates nothing on the probe
// path after warm-up. That also means a Matcher is not safe for concurrent
// use; create one per goroutine (MatchResidents does exactly that).
type Matcher struct {
	filter    *Filter
	sampleIdx []int // ascending; pinned at construction
	current   []WeightID
	probeBuf  []WeightID
	valBuf    []int64
}

// NewMatcher returns a matcher probing the given filter.
func NewMatcher(f *Filter) *Matcher {
	return &Matcher{filter: f, sampleIdx: f.sampleIdx}
}

// sampledAccumulate computes the accumulated (prefix-sum) values of p at the
// matcher's sample positions in one pass, without materializing the full
// accumulated series — the per-resident allocation the probe path used to
// pay. Sample indexes ascend by construction (pattern.SampleIndexes).
//
//dimatch:noalloc
func (m *Matcher) sampledAccumulate(p pattern.Pattern) []int64 {
	vals := m.valBuf[:0]
	run := int64(0)
	next := 0
	for i, v := range p {
		run += v
		for next < len(m.sampleIdx) && m.sampleIdx[next] == i {
			vals = append(vals, run)
			next++
		}
	}
	m.valBuf = vals[:0] // keep grown capacity for the next pattern
	return vals
}

// Match probes one local pattern. It returns the weight pointers shared by
// every sampled point, or ok == false when the pattern does not qualify
// (some bit unset, or no weight consistent across all points — the paper's
// "return zero").
//
// Several pointers can survive when distinct query combinations are within
// tolerance of each other at every sampled point (DESIGN.md D4); the caller
// forwards all of them and the ranker resolves per query.
//
// The returned slice is valid until the next Match call.
//
//dimatch:noalloc
func (m *Matcher) Match(p pattern.Pattern) (ids []WeightID, ok bool, err error) {
	if len(p) != m.filter.length {
		//dimatch:allow noalloc — cold path: caller bug, never taken per-resident
		return nil, false, fmt.Errorf("core: pattern length %d, filter wants %d", len(p), m.filter.length)
	}
	vals := m.sampledAccumulate(p)
	current := m.current[:0]
	for slot, v := range vals {
		found, bitsOK := m.filter.probe(slot, v, m.probeBuf[:0])
		if !bitsOK {
			return nil, false, nil
		}
		m.probeBuf = found[:0] // keep any grown capacity for the next probe
		if slot == 0 {
			current = append(current, found...)
			// The append may have grown the buffer; persist it immediately so
			// a later-slot rejection (the common case on partially-matching
			// residents) still keeps the capacity for the next pattern.
			m.current = current
		} else {
			// found and current live in distinct buffers, so the in-place
			// intersection of current never reads clobbered memory.
			current = intersectSorted(current, found)
		}
		if len(current) == 0 {
			return nil, false, nil
		}
	}
	m.current = current
	return current, true, nil
}

// SelectClosestWeights reduces a Match result to at most one weight pointer
// per query: the entry whose numerator is closest to the candidate
// pattern's value sum (its accumulated maximum), ties to the smaller
// numerator.
//
// This implements Algorithm 2's singular "return the weight". Under ε > 0
// a piece can sit within tolerance of several combinations of one query;
// the combination whose magnitude matches the piece is the right
// attribution — crediting any other corrupts the center's sum-to-1
// partition arithmetic (DESIGN.md D4).
func SelectClosestWeights(f *Filter, ids []WeightID, patternSum int64) ([]WeightID, error) {
	// The surviving pointer set is tiny (one handful of queries at most), so
	// a linear scan over a small stack-backed slice beats a map allocation —
	// this runs once per matching resident on the station hot path.
	type best struct {
		query QueryID
		id    WeightID
		dist  int64
		num   int64
	}
	var stack [8]best
	perQuery := stack[:0]
	for _, id := range ids {
		w, err := f.Weight(id)
		if err != nil {
			return nil, err
		}
		dist := w.Numerator - patternSum
		if dist < 0 {
			dist = -dist
		}
		found := false
		for i := range perQuery {
			if perQuery[i].query != w.Query {
				continue
			}
			found = true
			if dist < perQuery[i].dist || (dist == perQuery[i].dist && w.Numerator < perQuery[i].num) {
				perQuery[i] = best{query: w.Query, id: id, dist: dist, num: w.Numerator}
			}
			break
		}
		if !found {
			perQuery = append(perQuery, best{query: w.Query, id: id, dist: dist, num: w.Numerator})
		}
	}
	out := make([]WeightID, 0, len(perQuery))
	for _, b := range perQuery {
		out = append(out, b.id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// BFMatcher is the baseline counterpart of Matcher: same representation and
// sampling, but the plain Bloom filter can only answer "all bits set", so
// every such pattern is reported with no weight to prune or verify it.
type BFMatcher struct {
	filter *bloom.Filter
	sample []int
	length int
	keys   keyer
}

// NewBFMatcher returns a baseline matcher. params and patternLength must
// match the encoder's (they travel with the query message in practice).
func NewBFMatcher(f *bloom.Filter, params Params, patternLength int) (*BFMatcher, error) {
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if patternLength <= 0 {
		return nil, fmt.Errorf("core: pattern length %d, want > 0", patternLength)
	}
	idx, err := pattern.SampleIndexes(patternLength, params.Samples)
	if err != nil {
		return nil, err
	}
	return &BFMatcher{
		filter: f,
		sample: idx,
		length: patternLength,
		keys:   newKeyer(params, len(idx)),
	}, nil
}

// Match reports whether the pattern qualifies under the plain Bloom filter.
func (m *BFMatcher) Match(p pattern.Pattern) (bool, error) {
	if len(p) != m.length {
		return false, fmt.Errorf("core: pattern length %d, filter wants %d", len(p), m.length)
	}
	acc := p.Accumulate()
	vals, err := acc.SampleAt(m.sample)
	if err != nil {
		return false, err
	}
	for slot, v := range vals {
		if !m.filter.Contains(m.keys.key(slot, v)) {
			return false, nil
		}
	}
	return true, nil
}
