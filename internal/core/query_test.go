package core

import (
	"testing"

	"dimatch/internal/pattern"
)

func TestQueryValidate(t *testing.T) {
	tests := []struct {
		name    string
		q       Query
		wantErr bool
	}{
		{
			name: "paper running example",
			q:    Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}},
		},
		{
			name: "single local",
			q:    Query{ID: 2, Locals: []pattern.Pattern{{3, 4, 5}}},
		},
		{name: "no locals", q: Query{ID: 3}, wantErr: true},
		{
			name:    "length mismatch",
			q:       Query{ID: 4, Locals: []pattern.Pattern{{1, 2}, {1, 2, 3}}},
			wantErr: true,
		},
		{
			name:    "negative values",
			q:       Query{ID: 5, Locals: []pattern.Pattern{{1, -2, 3}}},
			wantErr: true,
		},
		{
			name:    "all zero",
			q:       Query{ID: 6, Locals: []pattern.Pattern{{0, 0, 0}, {0, 0, 0}}},
			wantErr: true,
		},
		{
			name:    "empty patterns",
			q:       Query{ID: 7, Locals: []pattern.Pattern{{}}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.q.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestQueryValidateTooManyLocals(t *testing.T) {
	locals := make([]pattern.Pattern, pattern.MaxLocals+1)
	for i := range locals {
		locals[i] = pattern.Pattern{1}
	}
	q := Query{ID: 1, Locals: locals}
	if err := q.Validate(); err == nil {
		t.Fatal("expected error for too many locals")
	}
}

func TestQueryGlobal(t *testing.T) {
	q := Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}}
	g, err := q.Global()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(pattern.Pattern{3, 4, 5}) {
		t.Fatalf("Global = %v, want {3,4,5}", g)
	}
	if q.Length() != 3 {
		t.Fatalf("Length = %d", q.Length())
	}
	if (Query{}).Length() != 0 {
		t.Fatal("empty query Length should be 0")
	}
}
