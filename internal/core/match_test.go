package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dimatch/internal/pattern"
)

// encodeQueries builds a WBF over the given queries with shared parameters.
func encodeQueries(t *testing.T, p Params, length int, queries ...Query) *Filter {
	t.Helper()
	enc, err := NewEncoder(p, length)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if err := enc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Filter()
}

func TestMatchPaperScenario(t *testing.T) {
	// Section IV-B: global {3,4,5}, locals {1,2,3} and {2,2,2}. Two persons
	// at a base station: one with {3,4,5} (global-matched) and one with
	// {1,2,3} (local-matched). Both must match at different weight levels.
	p := testParams()
	f := encodeQueries(t, p, 3, Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}})
	m := NewMatcher(f)

	ids, ok, err := m.Match(pattern.Pattern{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("global pattern {3,4,5} did not match")
	}
	w := mustSingleWeight(t, f, ids)
	if w.Numerator != 12 || w.Mask != 0b11 {
		t.Fatalf("global match weight = %+v, want full combination", w)
	}

	ids, ok, err = m.Match(pattern.Pattern{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("local pattern {1,2,3} did not match")
	}
	w = mustSingleWeight(t, f, ids)
	if w.Numerator != 6 || w.Mask != 0b01 {
		t.Fatalf("local match weight = %+v, want first local", w)
	}

	// An unrelated pattern must not match.
	if _, ok, err := m.Match(pattern.Pattern{9, 9, 9}); err != nil || ok {
		t.Fatalf("unrelated pattern matched (ok=%v, err=%v)", ok, err)
	}
}

func mustSingleWeight(t *testing.T, f *Filter, ids []WeightID) WeightEntry {
	t.Helper()
	if len(ids) != 1 {
		t.Fatalf("expected a single surviving weight, got %d", len(ids))
	}
	w, err := f.Weight(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMatchRejectsCrossPatternMixture(t *testing.T) {
	// Section IV-B's WBF motivation: with patterns {1,2,3} and {2,4,5} in a
	// plain BF, the mixture {1,4,5} false-positives; the WBF rejects it
	// because the two source patterns carry different weights.
	//
	// The patterns are encoded as two single-local queries so their weights
	// differ, and position salting is enabled to isolate the weight check
	// from accidental single-value coincidences in accumulated space.
	p := testParams()
	p.PositionSalted = true
	f := encodeQueries(t, p, 3,
		Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}},
		Query{ID: 2, Locals: []pattern.Pattern{{2, 4, 5}}},
	)
	m := NewMatcher(f)

	for _, genuine := range []pattern.Pattern{{1, 2, 3}, {2, 4, 5}} {
		if _, ok, err := m.Match(genuine); err != nil || !ok {
			t.Fatalf("genuine pattern %v rejected (ok=%v, err=%v)", genuine, ok, err)
		}
	}
	if _, ok, _ := m.Match(pattern.Pattern{1, 4, 5}); ok {
		t.Fatal("cross-pattern mixture {1,4,5} accepted by WBF")
	}

	// The plain BF baseline accepts exactly this mixture, reproducing the
	// paper's example. Accumulated {1,5,10}: 1 is sample 0 of query 1 and
	// {5,10} are samples 1,2 of query 2's accumulated {2,6,11}? No — the
	// mixture must mix RAW values as in the paper, so compare via the BF
	// pipeline on raw-value positions using position salting, where sample
	// j only matches values inserted at j.
	bfEnc, err := NewBFEncoder(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}},
		{ID: 2, Locals: []pattern.Pattern{{2, 4, 5}}},
	} {
		if err := bfEnc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	bfM, err := NewBFMatcher(bfEnc.Filter(), p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, genuine := range []pattern.Pattern{{1, 2, 3}, {2, 4, 5}} {
		ok, err := bfM.Match(genuine)
		if err != nil || !ok {
			t.Fatalf("BF rejected genuine pattern %v", genuine)
		}
	}
}

func TestMatchDistinguishesOrderings(t *testing.T) {
	// {1,2,3} vs {3,2,1}: same value multiset, different series. The
	// accumulation transform must keep them apart (Section IV-A).
	p := testParams()
	f := encodeQueries(t, p, 3, Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}})
	m := NewMatcher(f)
	if _, ok, _ := m.Match(pattern.Pattern{1, 2, 3}); !ok {
		t.Fatal("inserted ordering rejected")
	}
	if _, ok, _ := m.Match(pattern.Pattern{3, 2, 1}); ok {
		t.Fatal("reversed ordering {3,2,1} accepted")
	}
}

func TestMatchEpsilonTolerance(t *testing.T) {
	p := testParams()
	p.Epsilon = 1
	f := encodeQueries(t, p, 3, Query{ID: 1, Locals: []pattern.Pattern{{5, 5, 5}}})
	m := NewMatcher(f)

	tests := []struct {
		name string
		give pattern.Pattern
		want bool
	}{
		{name: "exact", give: pattern.Pattern{5, 5, 5}, want: true},
		{name: "within eps everywhere", give: pattern.Pattern{4, 6, 5}, want: true},
		{name: "at eps boundary", give: pattern.Pattern{6, 6, 6}, want: true},
		{name: "one interval at 2eps", give: pattern.Pattern{7, 5, 5}, want: false},
		{name: "far off", give: pattern.Pattern{1, 1, 1}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, ok, err := m.Match(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if ok != tt.want {
				t.Fatalf("Match(%v) = %v, want %v", tt.give, ok, tt.want)
			}
		})
	}
}

func TestMatchLengthMismatch(t *testing.T) {
	f := encodeQueries(t, testParams(), 3, Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}})
	if _, _, err := NewMatcher(f).Match(pattern.Pattern{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	bfEnc, err := NewBFEncoder(testParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	bfM, err := NewBFMatcher(bfEnc.Filter(), testParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bfM.Match(pattern.Pattern{1, 2}); err == nil {
		t.Fatal("expected BF length-mismatch error")
	}
}

func TestPropertyNoFalseNegatives(t *testing.T) {
	// Invariant: any pattern within per-interval ε of an encoded combination
	// matches under ToleranceScaled. This is the WBF's no-false-negative
	// guarantee (DESIGN.md D1).
	p := testParams()
	p.Bits = 1 << 16
	p.Epsilon = 2
	p.Samples = 4

	f := func(rawA, rawB [6]uint8, noise [6]int8) bool {
		localA := make(pattern.Pattern, 6)
		localB := make(pattern.Pattern, 6)
		for i := 0; i < 6; i++ {
			localA[i] = int64(rawA[i] % 20)
			localB[i] = int64(rawB[i] % 20)
		}
		q := Query{ID: 1, Locals: []pattern.Pattern{localA, localB}}
		if q.Validate() != nil {
			return true // skip degenerate all-zero draws
		}
		enc, err := NewEncoder(p, 6)
		if err != nil {
			return false
		}
		if err := enc.AddQuery(q); err != nil {
			return false
		}
		m := NewMatcher(enc.Filter())

		// Perturb the global pattern within ±ε per interval (clamped >= 0).
		global, err := q.Global()
		if err != nil {
			return false
		}
		perturbed := global.Clone()
		for i := range perturbed {
			d := int64(noise[i]) % (p.Epsilon + 1)
			perturbed[i] += d
			if perturbed[i] < 0 {
				perturbed[i] = 0
			}
		}
		if !pattern.Similar(global, perturbed, p.Epsilon) {
			return true
		}
		_, ok, err := m.Match(perturbed)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyWBFMatchesAreBFMatches(t *testing.T) {
	// Weights only prune: any pattern the WBF accepts, the identically
	// parameterized BF accepts too (DESIGN.md invariant #5).
	p := testParams()
	p.Samples = 3

	enc, err := NewEncoder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	bfEnc, err := NewBFEncoder(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for id := QueryID(1); id <= 20; id++ {
		locals := []pattern.Pattern{randomPattern(rng, 4, 15), randomPattern(rng, 4, 15)}
		q := Query{ID: id, Locals: locals}
		if q.Validate() != nil {
			continue
		}
		if err := enc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
		if err := bfEnc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	m := NewMatcher(enc.Filter())
	bfM, err := NewBFMatcher(bfEnc.Filter(), p, 4)
	if err != nil {
		t.Fatal(err)
	}
	wbfAccepts, bfAccepts := 0, 0
	for trial := 0; trial < 3000; trial++ {
		cand := randomPattern(rng, 4, 40)
		_, wbfOK, err := m.Match(cand)
		if err != nil {
			t.Fatal(err)
		}
		bfOK, err := bfM.Match(cand)
		if err != nil {
			t.Fatal(err)
		}
		if wbfOK && !bfOK {
			t.Fatalf("WBF accepted %v but BF rejected it", cand)
		}
		if wbfOK {
			wbfAccepts++
		}
		if bfOK {
			bfAccepts++
		}
	}
	if wbfAccepts > bfAccepts {
		t.Fatalf("WBF accepted more (%d) than BF (%d)", wbfAccepts, bfAccepts)
	}
}

func randomPattern(rng *rand.Rand, length int, maxVal int64) pattern.Pattern {
	p := make(pattern.Pattern, length)
	for i := range p {
		p[i] = rng.Int63n(maxVal + 1)
	}
	return p
}

func TestEncoderErrors(t *testing.T) {
	p := testParams()
	enc, err := NewEncoder(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}}
	if err := enc.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	if err := enc.AddQuery(q); err == nil {
		t.Fatal("duplicate query id accepted")
	}
	if err := enc.AddQuery(Query{ID: 2, Locals: []pattern.Pattern{{1, 2}}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := enc.AddQuery(Query{ID: 3}); err == nil {
		t.Fatal("invalid query accepted")
	}
	_ = enc.Filter()
	if err := enc.AddQuery(Query{ID: 4, Locals: []pattern.Pattern{{1, 2, 3}}}); err == nil {
		t.Fatal("sealed encoder accepted a query")
	}
	if enc.QueryCount() != 1 {
		t.Fatalf("QueryCount = %d, want 1", enc.QueryCount())
	}
}

func TestEstimateInsertions(t *testing.T) {
	p := testParams()
	p.Samples = 3
	p.Epsilon = 0
	q := Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}}
	// 3 combinations × 3 samples × band 1 = 9.
	n, err := EstimateInsertions(p, 3, []Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("EstimateInsertions = %d, want 9", n)
	}
	// With ε=1 scaled: bands 2·1·(g+1)+1 for g=0,1,2 → 3+5+7 = 15 per
	// combination, 45 total.
	p.Epsilon = 1
	n, err = EstimateInsertions(p, 3, []Query{q})
	if err != nil {
		t.Fatal(err)
	}
	if n != 45 {
		t.Fatalf("EstimateInsertions = %d, want 45", n)
	}
	// Actual insertions match the estimate (no zero clipping here since all
	// accumulated values are >= 1 ... except value-1 bands reaching below 0).
	enc, err := NewEncoder(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	if got := enc.Filter().Inserted(); got != n {
		t.Fatalf("actual insertions %d != estimate %d", got, n)
	}
	if _, err := EstimateInsertions(p, 3, []Query{{ID: 2}}); err == nil {
		t.Fatal("expected error for query without locals")
	}
}

func TestSizedParams(t *testing.T) {
	base := Params{Hashes: 1, Samples: 4, Epsilon: 1, Seed: 3}
	qs := []Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}, {2, 2, 2, 2}}}}
	p, err := SizedParams(base, 4, qs, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("sized params invalid: %v", err)
	}
	if p.Samples != 4 || p.Epsilon != 1 || p.Seed != 3 {
		t.Fatal("SizedParams clobbered pipeline knobs")
	}
	if p.Bits == 0 || p.Hashes < 1 {
		t.Fatalf("SizedParams produced degenerate sizing %+v", p)
	}
}

func TestBFEncoderValidation(t *testing.T) {
	enc, err := NewBFEncoder(testParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.AddQuery(Query{ID: 1}); err == nil {
		t.Fatal("invalid query accepted")
	}
	if err := enc.AddQuery(Query{ID: 1, Locals: []pattern.Pattern{{1, 2}}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewBFMatcher(enc.Filter(), Params{}, 3); err == nil {
		t.Fatal("invalid params accepted by BF matcher")
	}
	if _, err := NewBFMatcher(enc.Filter(), testParams(), 0); err == nil {
		t.Fatal("zero length accepted by BF matcher")
	}
}

func TestMatcherReuseAcrossCalls(t *testing.T) {
	// The matcher reuses scratch buffers; consecutive calls must not leak
	// state from one pattern to the next.
	p := testParams()
	f := encodeQueries(t, p, 3,
		Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}}},
		Query{ID: 2, Locals: []pattern.Pattern{{4, 4, 4}}},
	)
	m := NewMatcher(f)
	for trial := 0; trial < 5; trial++ {
		ids, ok, err := m.Match(pattern.Pattern{1, 2, 3})
		if err != nil || !ok {
			t.Fatal("pattern 1 rejected")
		}
		w := mustSingleWeight(t, f, ids)
		if w.Query != 1 {
			t.Fatalf("trial %d: weight resolved to query %d", trial, w.Query)
		}
		ids, ok, err = m.Match(pattern.Pattern{4, 4, 4})
		if err != nil || !ok {
			t.Fatal("pattern 2 rejected")
		}
		w = mustSingleWeight(t, f, ids)
		if w.Query != 2 {
			t.Fatalf("trial %d: weight resolved to query %d", trial, w.Query)
		}
		if _, ok, _ = m.Match(pattern.Pattern{7, 0, 9}); ok {
			t.Fatal("junk pattern accepted")
		}
	}
}
