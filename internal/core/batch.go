package core

import (
	"fmt"
	"runtime"
	"sync"

	"dimatch/internal/pattern"
)

// MatchResidents runs Algorithm 2 plus weight attribution over a station's
// whole resident store in one walk: every local pattern is probed against
// the filter, and qualifying residents are reported with the weight pointer
// closest to their value sum per query (SelectClosestWeights).
//
// persons and locals are parallel, person-ID ascending — the station store's
// invariant. Residents whose pattern length differs from the filter's are
// skipped (a pattern from another time window cannot qualify).
//
// The walk is split across a bounded worker pool of min(workers, residents)
// goroutines — workers <= 0 means GOMAXPROCS — each with its own Matcher so
// probe scratch is never shared. This is the batch pipeline's station-side
// half: one batched query exchange triggers one parallel walk, where the
// per-query path walks the store once per query on a single goroutine.
// Reports come back in person-ID order regardless of scheduling, so replies
// stay deterministic.
func MatchResidents(f *Filter, persons []PersonID, locals []pattern.Pattern, workers int) ([]Report, error) {
	if len(persons) != len(locals) {
		return nil, fmt.Errorf("core: %d persons but %d locals", len(persons), len(locals))
	}
	if len(persons) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(persons) {
		workers = len(persons)
	}
	if workers == 1 {
		return matchRange(f, persons, locals)
	}

	// Contiguous chunks keep each worker's output person-ascending; stitching
	// the chunks in order restores the global order without a sort.
	type chunk struct {
		reports []Report
		err     error
	}
	chunks := make([]chunk, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(persons) / workers
		hi := (w + 1) * len(persons) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			chunks[w].reports, chunks[w].err = matchRange(f, persons[lo:hi], locals[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()

	var out []Report
	for _, c := range chunks {
		if c.err != nil {
			return nil, c.err
		}
		out = append(out, c.reports...)
	}
	return out, nil
}

// matchRange is one worker's serial walk over a slice of the store.
func matchRange(f *Filter, persons []PersonID, locals []pattern.Pattern) ([]Report, error) {
	m := NewMatcher(f)
	var out []Report
	for i, local := range locals {
		if len(local) != f.Length() {
			continue
		}
		ids, ok, err := m.Match(local)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		selected, err := SelectClosestWeights(f, ids, local.Sum())
		if err != nil {
			return nil, err
		}
		out = append(out, Report{Person: persons[i], WeightIDs: selected})
	}
	return out, nil
}
