package core

import (
	"testing"

	"dimatch/internal/pattern"
)

// rankerFixture builds a filter whose weight table is known, for driving the
// aggregator directly.
func rankerFixture(t *testing.T) *Filter {
	t.Helper()
	// Query 1: locals {1,2,3} (num 6) and {2,2,2} (num 6), denom 12.
	// Query 2: single local {5,5} is invalid here (length); use same length.
	enc, err := NewEncoder(testParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.AddQuery(Query{ID: 1, Locals: []pattern.Pattern{{1, 2, 3}, {2, 2, 2}}}); err != nil {
		t.Fatal(err)
	}
	if err := enc.AddQuery(Query{ID: 2, Locals: []pattern.Pattern{{4, 5, 6}}}); err != nil {
		t.Fatal(err)
	}
	return enc.Filter()
}

// weightIDFor finds the table pointer for a (query, mask) pair.
func weightIDFor(t *testing.T, f *Filter, q QueryID, mask pattern.Subset) WeightID {
	t.Helper()
	for i, w := range f.Weights() {
		if w.Query == q && w.Mask == mask {
			return WeightID(i)
		}
	}
	t.Fatalf("no weight for query %d mask %s", q, mask)
	return 0
}

func TestAggregatorPartitionSumsToOne(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	// Person 7's data is split across two stations matching the two locals
	// of query 1: the weights must sum to exactly 1.
	if err := a.Add(Report{Person: 7, WeightIDs: []WeightID{weightIDFor(t, f, 1, 0b01)}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Report{Person: 7, WeightIDs: []WeightID{weightIDFor(t, f, 1, 0b10)}}); err != nil {
		t.Fatal(err)
	}
	res := a.TopK(1, 10)
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	if res[0].Person != 7 || res[0].Score() != 1.0 || res[0].Stations != 2 {
		t.Fatalf("result = %+v, want person 7 with score 1 from 2 stations", res[0])
	}
}

func TestAggregatorDeletesOverMatched(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	// The paper's counterexample: three stations each hold {3,4,5}, so each
	// matches the full combination; the aggregate {9,12,15} is not the
	// query, and the summed weight 3 > 1 must delete the person.
	full := weightIDFor(t, f, 1, 0b11)
	for i := 0; i < 3; i++ {
		if err := a.Add(Report{Person: 9, WeightIDs: []WeightID{full}}); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.Candidates(1); got != 1 {
		t.Fatalf("Candidates = %d, want 1 before deletion", got)
	}
	if res := a.TopK(1, 10); len(res) != 0 {
		t.Fatalf("over-matched person survived: %+v", res)
	}
}

func TestAggregatorGlobalPlusLocalDeleted(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	// A person matching the global at one station AND a local at another
	// has aggregate != query; sum = 1 + 0.5 > 1 → deleted (Algorithm 3's
	// rationale, Section IV-B).
	if err := a.Add(Report{Person: 3, WeightIDs: []WeightID{weightIDFor(t, f, 1, 0b11)}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Report{Person: 3, WeightIDs: []WeightID{weightIDFor(t, f, 1, 0b01)}}); err != nil {
		t.Fatal(err)
	}
	if res := a.TopK(1, 10); len(res) != 0 {
		t.Fatalf("global+local person survived: %+v", res)
	}
}

func TestAggregatorRankingOrder(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	w1 := weightIDFor(t, f, 1, 0b01)   // 6/12
	wAll := weightIDFor(t, f, 1, 0b11) // 12/12
	// Person 1: full match. Persons 2, 3: half match (tie broken by ID).
	mustAdd(t, a, Report{Person: 1, WeightIDs: []WeightID{wAll}})
	mustAdd(t, a, Report{Person: 3, WeightIDs: []WeightID{w1}})
	mustAdd(t, a, Report{Person: 2, WeightIDs: []WeightID{w1}})

	res := a.TopK(1, 0)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Person != 1 || res[1].Person != 2 || res[2].Person != 3 {
		t.Fatalf("order = %d,%d,%d; want 1,2,3", res[0].Person, res[1].Person, res[2].Person)
	}
	// K truncates.
	if got := a.TopK(1, 2); len(got) != 2 {
		t.Fatalf("TopK(2) returned %d", len(got))
	}
}

func mustAdd(t *testing.T, a *Aggregator, r Report) {
	t.Helper()
	if err := a.Add(r); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatorMinNumeratorPerStation(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	// One station report carrying two surviving weights of the same query
	// credits the smaller numerator (DESIGN.md D4): 6, not 12.
	mustAdd(t, a, Report{Person: 5, WeightIDs: []WeightID{
		weightIDFor(t, f, 1, 0b01),
		weightIDFor(t, f, 1, 0b11),
	}})
	res := a.TopK(1, 10)
	if len(res) != 1 || res[0].Numerator != 6 {
		t.Fatalf("result = %+v, want numerator 6", res)
	}
}

func TestAggregatorSeparatesQueries(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	// One report matching both queries counts toward each independently.
	mustAdd(t, a, Report{Person: 4, WeightIDs: []WeightID{
		weightIDFor(t, f, 1, 0b11),
		weightIDFor(t, f, 2, 0b01),
	}})
	r1 := a.TopK(1, 10)
	r2 := a.TopK(2, 10)
	if len(r1) != 1 || r1[0].Score() != 1.0 {
		t.Fatalf("query 1 results = %+v", r1)
	}
	if len(r2) != 1 || r2[0].Score() != 1.0 {
		t.Fatalf("query 2 results = %+v", r2)
	}
	qs := a.Queries()
	if len(qs) != 2 || qs[0] != 1 || qs[1] != 2 {
		t.Fatalf("Queries() = %v", qs)
	}
}

func TestAggregatorDanglingPointer(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	if err := a.Add(Report{Person: 1, WeightIDs: []WeightID{WeightID(len(f.Weights()))}}); err == nil {
		t.Fatal("dangling pointer accepted")
	}
}

func TestAggregatorEmptyReportIsNoop(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	mustAdd(t, a, Report{Person: 1})
	if got := a.Candidates(1); got != 0 {
		t.Fatalf("empty report created %d candidates", got)
	}
	if res := a.TopK(1, 5); len(res) != 0 {
		t.Fatalf("empty report produced results: %+v", res)
	}
}

func TestSelectClosestWeights(t *testing.T) {
	f := rankerFixture(t)
	// Query 1 numerators: mask 01 -> 6, mask 10 -> 6, mask 11 -> 12.
	// Query 2 numerator: mask 01 -> 15.
	ids := []WeightID{
		weightIDFor(t, f, 1, 0b01),
		weightIDFor(t, f, 1, 0b11),
		weightIDFor(t, f, 2, 0b01),
	}
	// A piece of magnitude 11 is closest to query 1's numerator 12; query
	// 2's single entry is kept regardless.
	got, err := SelectClosestWeights(f, ids, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("selected %d weights, want 2 (one per query)", len(got))
	}
	for _, id := range got {
		w, err := f.Weight(id)
		if err != nil {
			t.Fatal(err)
		}
		if w.Query == 1 && w.Numerator != 12 {
			t.Fatalf("query 1 selected numerator %d, want 12", w.Numerator)
		}
	}
	// Magnitude 5: closest is 6; the tie between the two mask entries with
	// numerator 6 resolves deterministically.
	got, err = SelectClosestWeights(f, ids[:2], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("selected %d weights, want 1", len(got))
	}
	if w, _ := f.Weight(got[0]); w.Numerator != 6 {
		t.Fatalf("selected numerator %d, want 6", w.Numerator)
	}
	// Dangling pointer errors.
	if _, err := SelectClosestWeights(f, []WeightID{WeightID(len(f.Weights()))}, 1); err == nil {
		t.Fatal("dangling pointer accepted")
	}
	// Empty input selects nothing.
	if got, err := SelectClosestWeights(f, nil, 1); err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestResultScore(t *testing.T) {
	r := Result{Numerator: 6, Denominator: 12}
	if r.Score() != 0.5 {
		t.Fatalf("Score = %v", r.Score())
	}
	if (Result{}).Score() != 0 {
		t.Fatal("zero-denominator score should be 0")
	}
}

// TestAggregatorReplicaDedup pins the replica-aware aggregation: for a person
// marked replicated, reports from several stations describe the same
// underlying pattern, so the highest-scoring report wins instead of the
// weights summing (which would delete the person as over-matched). Unmarked
// persons keep the paper's summation model even in the same aggregation.
func TestAggregatorReplicaDedup(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	a.SetReplicated(func(p PersonID) bool { return p == 9 })

	// Person 9 is replicated on three stations; each replica matches the
	// full combination (weight 1). Summed this is the paper's deletion
	// counterexample; deduped it is one perfect match.
	full := weightIDFor(t, f, 1, 0b11)
	for i := 0; i < 3; i++ {
		if err := a.Add(Report{Person: 9, WeightIDs: []WeightID{full}}); err != nil {
			t.Fatal(err)
		}
	}
	// Person 7 is a genuine split across two stations and must still sum.
	if err := a.Add(Report{Person: 7, WeightIDs: []WeightID{weightIDFor(t, f, 1, 0b01)}}); err != nil {
		t.Fatal(err)
	}
	if err := a.Add(Report{Person: 7, WeightIDs: []WeightID{weightIDFor(t, f, 1, 0b10)}}); err != nil {
		t.Fatal(err)
	}

	res := a.TopK(1, 10)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(res), res)
	}
	for _, r := range res {
		if r.Score() != 1.0 {
			t.Fatalf("person %d scored %.3f, want 1", r.Person, r.Score())
		}
		if r.Person == 9 && r.Stations != 3 {
			t.Fatalf("replicated person reports %d stations, want 3 (the replica count)", r.Stations)
		}
	}
}

// TestAggregatorReplicaDedupHighestWins: replicas that drifted (one holds a
// slightly different copy) resolve to the best report, not the first or the
// sum.
func TestAggregatorReplicaDedupHighestWins(t *testing.T) {
	f := rankerFixture(t)
	a := NewAggregator(f)
	a.SetReplicated(func(PersonID) bool { return true })

	half := weightIDFor(t, f, 1, 0b01) // numerator 6
	full := weightIDFor(t, f, 1, 0b11) // numerator 12
	// Lower score first, higher second, lower again: max must stick at 12.
	for _, id := range []WeightID{half, full, half} {
		if err := a.Add(Report{Person: 4, WeightIDs: []WeightID{id}}); err != nil {
			t.Fatal(err)
		}
	}
	res := a.TopK(1, 10)
	if len(res) != 1 || res[0].Score() != 1.0 || res[0].Stations != 3 {
		t.Fatalf("result = %+v, want score 1 from 3 replicas", res)
	}
}
