package core

import (
	"errors"
	"fmt"

	"dimatch/internal/pattern"
)

// QueryID identifies one query pattern set within a filter. Multiple
// queries are hashed into a single WBF ("we hash all the patterns into one
// Bloom Filter and then distribute this Bloom Filter to all the base
// stations"); the weight table keeps them apart.
type QueryID uint32

// Query is one pattern set to search for: the local patterns observed for a
// reference person, whose element-wise sum is the global pattern that
// defines a match (Problem Statement, Section III-B).
type Query struct {
	ID QueryID
	// Locals are the e >= 1 local patterns. A query known only globally is
	// expressed as a single local equal to the global pattern.
	Locals []pattern.Pattern
}

// Global returns the query's global pattern, the element-wise sum of its
// locals.
func (q Query) Global() (pattern.Pattern, error) {
	return pattern.SumAll(q.Locals)
}

// Validate checks structural soundness: at least one local, no more than
// pattern.MaxLocals, equal lengths, non-negative values (the communication
// attributes are counts and durations) and a non-zero global sum (an
// all-zero query would carry weight 0/0).
func (q Query) Validate() error {
	if len(q.Locals) == 0 {
		return errors.New("core: query has no local patterns")
	}
	if len(q.Locals) > pattern.MaxLocals {
		return fmt.Errorf("core: query has %d locals, max %d", len(q.Locals), pattern.MaxLocals)
	}
	length := len(q.Locals[0])
	if length == 0 {
		return errors.New("core: query patterns are empty")
	}
	var sum int64
	for i, l := range q.Locals {
		if len(l) != length {
			return fmt.Errorf("core: local %d has length %d, want %d", i, len(l), length)
		}
		if !l.IsNonNegative() {
			return fmt.Errorf("core: local %d has negative values", i)
		}
		sum += l.Sum()
	}
	if sum == 0 {
		return errors.New("core: query global pattern sums to zero")
	}
	return nil
}

// Length returns the time-series length of the query's patterns.
func (q Query) Length() int {
	if len(q.Locals) == 0 {
		return 0
	}
	return len(q.Locals[0])
}
