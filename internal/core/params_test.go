package core

import (
	"strings"
	"testing"
)

func TestParamsValidate(t *testing.T) {
	valid := Params{Bits: 1024, Hashes: 4, Samples: 12, Epsilon: 1, Tolerance: ToleranceScaled}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{name: "zero bits", mutate: func(p *Params) { p.Bits = 0 }},
		{name: "zero hashes", mutate: func(p *Params) { p.Hashes = 0 }},
		{name: "negative hashes", mutate: func(p *Params) { p.Hashes = -2 }},
		{name: "zero samples", mutate: func(p *Params) { p.Samples = 0 }},
		{name: "negative epsilon", mutate: func(p *Params) { p.Epsilon = -1 }},
		{name: "bad tolerance", mutate: func(p *Params) { p.Tolerance = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
		})
	}
}

func TestParamsWithDefaults(t *testing.T) {
	p := Params{Bits: 64, Hashes: 2}.withDefaults()
	if p.Tolerance != ToleranceScaled {
		t.Fatalf("default tolerance = %v", p.Tolerance)
	}
	if p.Samples != DefaultSamples {
		t.Fatalf("default samples = %d, want %d", p.Samples, DefaultSamples)
	}
	// Explicit values survive.
	p = Params{Bits: 64, Hashes: 2, Samples: 3, Tolerance: ToleranceAbsolute}.withDefaults()
	if p.Samples != 3 || p.Tolerance != ToleranceAbsolute {
		t.Fatal("withDefaults clobbered explicit values")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(10000)
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	if p.Samples != DefaultSamples {
		t.Fatalf("Samples = %d, want %d (paper's converged b)", p.Samples, DefaultSamples)
	}
	if p.Bits < 10000 {
		t.Fatalf("Bits = %d, implausibly small for 10k elements at 1%% FP", p.Bits)
	}
}

func TestBand(t *testing.T) {
	scaled := Params{Epsilon: 2, Tolerance: ToleranceScaled}
	if got := scaled.band(0); got != 2 {
		t.Fatalf("scaled band(0) = %d, want 2", got)
	}
	if got := scaled.band(4); got != 10 {
		t.Fatalf("scaled band(4) = %d, want 10 (= ε·(g+1))", got)
	}
	abs := Params{Epsilon: 2, Tolerance: ToleranceAbsolute}
	if got := abs.band(4); got != 2 {
		t.Fatalf("absolute band(4) = %d, want 2", got)
	}
}

func TestToleranceModeString(t *testing.T) {
	if ToleranceScaled.String() != "scaled" || ToleranceAbsolute.String() != "absolute" {
		t.Fatal("mode strings wrong")
	}
	if !strings.Contains(ToleranceMode(42).String(), "42") {
		t.Fatal("unknown mode string should carry the value")
	}
}
