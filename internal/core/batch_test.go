package core

import (
	"testing"

	"dimatch/internal/pattern"
)

// batchFilter builds a filter over a handful of queries for the pool tests.
func batchFilter(t testing.TB, queries []Query) *Filter {
	t.Helper()
	params := Params{
		Bits:      1 << 14,
		Hashes:    3,
		Samples:   4,
		Epsilon:   0,
		Tolerance: ToleranceScaled,
		Seed:      7,
	}
	enc, err := NewEncoder(params, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if err := enc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	return enc.Filter()
}

// TestMatchResidentsMatchesSerialWalk pins the pool against the reference
// serial walk: any worker count must produce the identical report list.
func TestMatchResidentsMatchesSerialWalk(t *testing.T) {
	queries := []Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}, {2, 0, 1, 1}}},
		{ID: 2, Locals: []pattern.Pattern{{5, 5, 5, 5}}},
	}
	f := batchFilter(t, queries)

	var persons []PersonID
	var locals []pattern.Pattern
	// The query pieces themselves, their sums, and noise.
	candidates := []pattern.Pattern{
		{1, 2, 3, 4}, {2, 0, 1, 1}, {3, 2, 4, 5}, {5, 5, 5, 5},
		{9, 9, 9, 9}, {0, 0, 0, 1}, {1, 1, 1, 1}, {2, 2, 2, 2},
	}
	for i := 0; i < 64; i++ {
		persons = append(persons, PersonID(i*3+1))
		locals = append(locals, candidates[i%len(candidates)])
	}

	want, err := MatchResidents(f, persons, locals, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial walk matched nothing; test data broken")
	}
	for _, workers := range []int{0, 2, 3, 7, 64, 1000} {
		got, err := MatchResidents(f, persons, locals, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d reports, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Person != want[i].Person {
				t.Fatalf("workers=%d: report %d person %d, want %d", workers, i, got[i].Person, want[i].Person)
			}
			if len(got[i].WeightIDs) != len(want[i].WeightIDs) {
				t.Fatalf("workers=%d: report %d weight count diverged", workers, i)
			}
			for j := range want[i].WeightIDs {
				if got[i].WeightIDs[j] != want[i].WeightIDs[j] {
					t.Fatalf("workers=%d: report %d weight %d diverged", workers, i, j)
				}
			}
		}
	}
}

func TestMatchResidentsEdgeCases(t *testing.T) {
	f := batchFilter(t, []Query{{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}}})
	if _, err := MatchResidents(f, []PersonID{1}, nil, 0); err == nil {
		t.Fatal("mismatched parallel slices accepted")
	}
	got, err := MatchResidents(f, nil, nil, 0)
	if err != nil || got != nil {
		t.Fatalf("empty store: %v, %v", got, err)
	}
	// A resident from another time window is skipped, not an error.
	got, err = MatchResidents(f, []PersonID{5}, []pattern.Pattern{{1, 2}}, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("length-mismatched resident: %v, %v", got, err)
	}
}

// TestAggregatorAddFromMergesTables models the mixed-version search: the
// same person is reported once via a combined (batch) table and once via a
// per-query (legacy) table; the accumulation must equal two reports through
// a single table.
func TestAggregatorAddFromMergesTables(t *testing.T) {
	q := Query{ID: 3, Locals: []pattern.Pattern{{1, 2, 3, 4}, {2, 0, 1, 1}}}
	other := Query{ID: 9, Locals: []pattern.Pattern{{4, 4, 4, 4}}}
	combined := batchFilter(t, []Query{q, other})
	single := batchFilter(t, []Query{q})

	findWeight := func(f *Filter, query QueryID, num int64) WeightID {
		for i, w := range f.Weights() {
			if w.Query == query && w.Numerator == num {
				return WeightID(i)
			}
		}
		t.Fatalf("no weight entry for query %d numerator %d", query, num)
		return 0
	}
	// Piece sums: local 0 sums to 10, local 1 sums to 4; global is 14.
	wCombined := findWeight(combined, 3, 10)
	wSingle := findWeight(single, 3, 4)

	agg := NewBatchAggregator()
	if err := agg.AddFrom(combined.Weights(), Report{Person: 77, WeightIDs: []WeightID{wCombined}}); err != nil {
		t.Fatal(err)
	}
	if err := agg.AddFrom(single.Weights(), Report{Person: 77, WeightIDs: []WeightID{wSingle}}); err != nil {
		t.Fatal(err)
	}
	results := agg.TopK(3, 0)
	if len(results) != 1 {
		t.Fatalf("%d results, want 1", len(results))
	}
	r := results[0]
	if r.Person != 77 || r.Numerator != 14 || r.Denominator != 14 || r.Stations != 2 {
		t.Fatalf("merged result %+v, want 14/14 over 2 stations", r)
	}
	if r.Score() != 1.0 {
		t.Fatalf("score %v, want 1 (complete partition across tables)", r.Score())
	}

	// A dangling pointer against the *given* table still fails, even if the
	// other table is longer.
	if err := agg.AddFrom(single.Weights(), Report{Person: 1, WeightIDs: []WeightID{WeightID(len(single.Weights()))}}); err == nil {
		t.Fatal("dangling pointer accepted")
	}
}

// BenchmarkMatchResidents measures the station-side batch walk — the probe
// path the batched pipeline leans on.
func BenchmarkMatchResidents(b *testing.B) {
	queries := make([]Query, 16)
	for i := range queries {
		queries[i] = Query{ID: QueryID(i + 1), Locals: []pattern.Pattern{
			{int64(i + 1), 2, 3, 4}, {2, int64(i % 3), 1, 1},
		}}
	}
	f := batchFilter(b, queries)
	var persons []PersonID
	var locals []pattern.Pattern
	for i := 0; i < 2048; i++ {
		persons = append(persons, PersonID(i))
		locals = append(locals, pattern.Pattern{int64(i % 7), 2, 3, int64(i % 5)})
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatchResidents(f, persons, locals, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MatchResidents(f, persons, locals, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkMatcherProbe pins the allocation-free probe path: one Match call
// per iteration over a warm Matcher.
func BenchmarkMatcherProbe(b *testing.B) {
	f := batchFilter(b, []Query{
		{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}, {2, 0, 1, 1}}},
	})
	m := NewMatcher(f)
	p := pattern.Pattern{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Match(p); err != nil {
			b.Fatal(err)
		}
	}
}
