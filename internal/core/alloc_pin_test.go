// AllocsPerRun pins for the //dimatch:noalloc functions of this package:
// (*Matcher).Match, (*Matcher).sampledAccumulate, (*Filter).probe and
// intersectSorted — the per-resident station probe path. The noalloc
// analyzer is the static early warning; these tests are the runtime ground
// truth after one warm-up call grows the matcher's scratch buffers.
// cmd/di-lint -allocharness reports any annotated function missing from
// this file.
package core

import (
	"testing"

	"dimatch/internal/pattern"
)

var (
	matchSink  []WeightID
	boolSink   bool
	valsSink   []int64
	weightSink []WeightID
)

// warmMatcher builds the paper's running-example filter and a matcher that
// has already matched once, so every scratch buffer is at steady-state
// capacity.
func warmMatcher(t *testing.T) (*Matcher, pattern.Pattern) {
	t.Helper()
	f := buildPaperFilter(t, testParams())
	m := NewMatcher(f)
	p := pattern.Pattern{1, 2, 3}
	if _, ok, err := m.Match(p); err != nil || !ok {
		t.Fatalf("warm-up match: ok=%v err=%v", ok, err)
	}
	return m, p
}

func TestNoallocMatcherMatch(t *testing.T) {
	m, p := warmMatcher(t)
	miss := pattern.Pattern{9, 9, 9}
	if n := testing.AllocsPerRun(100, func() {
		matchSink, boolSink, _ = m.Match(p)
		matchSink, boolSink, _ = m.Match(miss)
	}); n != 0 {
		t.Fatalf("(*Matcher).Match allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocMatchersampledAccumulate(t *testing.T) {
	m, p := warmMatcher(t)
	if n := testing.AllocsPerRun(100, func() {
		valsSink = m.sampledAccumulate(p)
	}); n != 0 {
		t.Fatalf("(*Matcher).sampledAccumulate allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocFilterprobe(t *testing.T) {
	m, p := warmMatcher(t)
	vals := m.sampledAccumulate(p)
	scratch := make([]WeightID, 0, 8)
	if n := testing.AllocsPerRun(100, func() {
		weightSink, boolSink = m.filter.probe(0, vals[0], scratch[:0])
	}); n != 0 {
		t.Fatalf("(*Filter).probe allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}

func TestNoallocintersectSorted(t *testing.T) {
	a := make([]WeightID, 0, 8)
	b := []WeightID{1, 2, 4, 7}
	if n := testing.AllocsPerRun(100, func() {
		a = append(a[:0], 1, 3, 4, 8)
		weightSink = intersectSorted(a, b)
	}); n != 0 {
		t.Fatalf("intersectSorted allocates %v times per run; //dimatch:noalloc requires 0", n)
	}
}
