package core

import (
	"math"

	"dimatch/internal/bloom"
)

// Analysis quantifies the false-positive behaviour the paper discusses in
// Sections II-B and V ("the upper bound tightness of WBF"): a plain Bloom
// filter only guarantees a false-positive lower bound, while the WBF's
// weight-consistency check multiplies in an additional pruning factor.
//
// Model, using the paper's notation (Table I): with m bits, k hashes and n
// inserted values, the probability a probed absent value appears present is
// the standard q = (1 - p)^k with p = (1-1/m)^(kn). A spurious pattern whose
// sampled values are all absent from the filter must pass b independent
// sampled points, so
//
//	FP_BF(pattern) <= q^b.
//
// The WBF additionally requires one weight shared by all b points. With W
// distinct weights spread uniformly over slot lists, the chance that b
// accidental hits agree on some weight is at most W^(1-b) of the BF rate
// (each extra point must re-draw the same weight), giving
//
//	FP_WBF(pattern) <= q^b * W^(1-b).
//
// These bounds cover hash-collision false positives only: patterns whose
// sampled values genuinely occur in the filter (inserted by a different
// pattern, or by the same pattern at a different position) pass the plain
// Bloom test legitimately — the paper's {1,4,5} mixture example. The BF
// baseline has no defence against such value coincidences, which is why its
// precision collapses as patterns accumulate (Figure 4a); the WBF prunes
// them with the weight-consistency check. Empirically, WBF pattern false
// positives are therefore far below BF's on realistic workloads even though
// both share the same hash-collision bound.
type Analysis struct {
	// BitZeroProb is p, the probability a given bit stays 0.
	BitZeroProb float64
	// ValueFPProb is q, the probability one absent value probes as present.
	ValueFPProb float64
	// PatternFPBoundBF bounds the BF per-pattern false-positive rate, q^b.
	PatternFPBoundBF float64
	// PatternFPBoundWBF bounds the WBF per-pattern rate, q^b * W^(1-b).
	PatternFPBoundWBF float64
	// DistinctWeights is W, the number of weight-table entries.
	DistinctWeights int
}

// Analyze computes the false-positive model for a built filter.
func Analyze(f *Filter) Analysis {
	m := float64(f.params.Bits)
	k := float64(f.params.Hashes)
	n := float64(f.DistinctKeys())
	b := float64(len(f.sampleIdx))
	w := len(f.weights)

	p := math.Pow(1-1/m, k*n)
	q := math.Pow(1-p, k)
	bf := math.Pow(q, b)
	wbf := bf
	if w > 1 && b > 1 {
		wbf = bf * math.Pow(float64(w), 1-b)
	}
	return Analysis{
		BitZeroProb:       p,
		ValueFPProb:       q,
		PatternFPBoundBF:  bf,
		PatternFPBoundWBF: wbf,
		DistinctWeights:   w,
	}
}

// AnalyzeParams computes the same model from raw parameters, before any
// filter is built (for sizing decisions).
func AnalyzeParams(p Params, inserted uint64, samples, distinctWeights int) Analysis {
	q := bloom.AnalyticFPRate(p.Bits, p.Hashes, inserted)
	pZero := math.Pow(1-1/float64(p.Bits), float64(p.Hashes)*float64(inserted))
	bf := math.Pow(q, float64(samples))
	wbf := bf
	if distinctWeights > 1 && samples > 1 {
		wbf = bf * math.Pow(float64(distinctWeights), float64(1-samples))
	}
	return Analysis{
		BitZeroProb:       pZero,
		ValueFPProb:       q,
		PatternFPBoundBF:  bf,
		PatternFPBoundWBF: wbf,
		DistinctWeights:   distinctWeights,
	}
}
