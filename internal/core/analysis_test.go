package core

import (
	"math/rand"
	"testing"

	"dimatch/internal/pattern"
)

func TestAnalyzeBasicShape(t *testing.T) {
	f := buildPaperFilter(t, testParams())
	an := Analyze(f)
	if an.BitZeroProb <= 0 || an.BitZeroProb >= 1 {
		t.Fatalf("BitZeroProb = %v", an.BitZeroProb)
	}
	if an.ValueFPProb <= 0 || an.ValueFPProb >= 1 {
		t.Fatalf("ValueFPProb = %v", an.ValueFPProb)
	}
	if an.PatternFPBoundWBF > an.PatternFPBoundBF {
		t.Fatalf("WBF bound %v exceeds BF bound %v", an.PatternFPBoundWBF, an.PatternFPBoundBF)
	}
	if an.DistinctWeights != 3 {
		t.Fatalf("DistinctWeights = %d, want 3", an.DistinctWeights)
	}
}

func TestAnalyzeParamsConsistentWithAnalyze(t *testing.T) {
	f := buildPaperFilter(t, testParams())
	a1 := Analyze(f)
	a2 := AnalyzeParams(f.Params(), f.Inserted(), len(f.SampleIndexes()), len(f.Weights()))
	if diff := a1.ValueFPProb - a2.ValueFPProb; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("ValueFPProb diverges: %v vs %v", a1.ValueFPProb, a2.ValueFPProb)
	}
	if diff := a1.PatternFPBoundWBF - a2.PatternFPBoundWBF; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("WBF bounds diverge: %v vs %v", a1.PatternFPBoundWBF, a2.PatternFPBoundWBF)
	}
}

func TestValueLevelFPNearAnalytic(t *testing.T) {
	// The q = (1-p)^k model covers hash-collision false positives: probes of
	// values that were never inserted. Verify the measured rate on
	// guaranteed-absent values sits near the analytic estimate.
	p := Params{
		Bits:    1 << 12, // small on purpose: measurable FP pressure
		Hashes:  3,
		Samples: 4,
		Seed:    11,
	}
	const length = 8
	rng := rand.New(rand.NewSource(5))

	enc, err := NewEncoder(p, length)
	if err != nil {
		t.Fatal(err)
	}
	for id := QueryID(1); id <= 60; id++ {
		q := Query{ID: id, Locals: []pattern.Pattern{randomPattern(rng, length, 30)}}
		if q.Validate() != nil {
			continue
		}
		if err := enc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	f := enc.Filter()
	an := Analyze(f)

	// Accumulated values of the inserted patterns are <= 8*30 = 240, so
	// values beyond 10_000 are guaranteed absent: any positive probe is a
	// pure hash collision.
	const trials = 50000
	hits := 0
	for i := 0; i < trials; i++ {
		v := 10_000 + rng.Int63n(1<<40)
		if _, ok := f.probe(0, v, nil); ok {
			hits++
		}
	}
	observed := float64(hits) / trials
	if observed > an.ValueFPProb*1.5+0.005 {
		t.Fatalf("observed value FP %v far above analytic %v", observed, an.ValueFPProb)
	}
}

func TestWBFPrunesBFFalsePositives(t *testing.T) {
	// The empirical heart of Figure 4a: on a workload dense enough that the
	// plain BF false-positives through value coincidences (accumulated
	// values shared across patterns and positions), the WBF's weight check
	// prunes a large share of them and never accepts more than BF.
	p := Params{
		Bits:    1 << 14,
		Hashes:  4,
		Samples: 4,
		Seed:    11,
	}
	const length = 8
	rng := rand.New(rand.NewSource(5))

	enc, err := NewEncoder(p, length)
	if err != nil {
		t.Fatal(err)
	}
	bfEnc, err := NewBFEncoder(p, length)
	if err != nil {
		t.Fatal(err)
	}
	var inserted []pattern.Pattern
	for id := QueryID(1); id <= 60; id++ {
		q := Query{ID: id, Locals: []pattern.Pattern{randomPattern(rng, length, 12)}}
		if q.Validate() != nil {
			continue
		}
		if err := enc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
		if err := bfEnc.AddQuery(q); err != nil {
			t.Fatal(err)
		}
		inserted = append(inserted, q.Locals[0])
	}
	m := NewMatcher(enc.Filter())
	bfM, err := NewBFMatcher(bfEnc.Filter(), p, length)
	if err != nil {
		t.Fatal(err)
	}

	const trials = 20000
	wbfFP, bfFP := 0, 0
	for i := 0; i < trials; i++ {
		cand := randomPattern(rng, length, 12)
		truePositive := false
		for _, ins := range inserted {
			if pattern.Similar(cand, ins, 0) {
				truePositive = true
				break
			}
		}
		if truePositive {
			continue
		}
		if _, ok, _ := m.Match(cand); ok {
			wbfFP++
		}
		if ok, _ := bfM.Match(cand); ok {
			bfFP++
		}
	}
	if wbfFP > bfFP {
		t.Fatalf("WBF FP count %d exceeds BF %d", wbfFP, bfFP)
	}
	if bfFP == 0 {
		t.Skip("workload produced no BF false positives; nothing to prune")
	}
	if ratio := float64(wbfFP) / float64(bfFP); ratio > 0.5 {
		t.Fatalf("WBF pruned too little: %d/%d = %.2f of BF false positives survive", wbfFP, bfFP, ratio)
	}
}
