// Package stream turns mutation into a first-class sustained workload: a
// streaming ingest pipeline in front of the cluster's call-per-batch
// Ingest/Place path.
//
// The shape follows the staged observer-pipeline idiom: Submit admits a
// pattern into one bounded intake queue; a pool of encoder workers pulls
// from it, validates, computes the pattern's HRW placement targets over the
// alive membership and fans one copy per target into that station's
// applier; each applier is a single goroutine owning a bounded queue, so a
// station's flushes never contend with another's and no worker shares
// mutable state with its peers (replica copies of one pattern simply ride
// their own target's shard). Appliers batch copies and flush them over the
// existing acknowledged KindIngest wire path, which keeps the coordinator's
// routing summaries delta-updated and records placement intents so the
// replica-aware search aggregation and the self-healing reconciliation
// cover streamed patterns exactly like Place'd ones.
//
// Backpressure propagates backward through the bounded queues: a slow
// station fills its applier queue, which stalls the encoders, which fills
// the intake queue, at which point admission control engages — Block makes
// Submit wait, Shed makes it return ErrOverloaded with the drop accounted.
// TTL-based eviction (Options.TTL) registers every flushed pattern on a
// deadline wheel whose sweeps drive grouped Evict batches, so stations
// self-trim under sustained load.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
	"dimatch/internal/placement"
)

// Admission selects what Submit does when the pipeline's queues are full.
type Admission int

const (
	// Block makes Submit wait for queue space (or the caller's ctx). The
	// pipeline applies backpressure to the producer; nothing is dropped.
	Block Admission = iota
	// Shed makes Submit return ErrOverloaded immediately when the intake
	// queue is full. The drop is counted in the Shed counter — the caller
	// chose latency over completeness and the accounting shows exactly how
	// much completeness was paid.
	Shed
)

func (a Admission) String() string {
	switch a {
	case Block:
		return "block"
	case Shed:
		return "shed"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

var (
	// ErrOverloaded reports a shed-mode Submit that found the intake queue
	// full. The submission was not admitted; it is counted in Shed.
	ErrOverloaded = errors.New("stream: pipeline overloaded")
	// ErrClosed reports a Submit or Flush after Close.
	ErrClosed = errors.New("stream: ingestor closed")
)

// maxFlushAttempts bounds how many stations a single pattern copy may be
// re-routed across after flush failures before it is abandoned (counted in
// FlushFailures). Each attempt recomputes targets over the then-current
// membership, so the budget is only exhausted under sustained total
// failure.
const maxFlushAttempts = 5

// Options configures one streaming pipeline.
type Options struct {
	// Encoders is the worker-pool size pulling from the intake queue
	// (default 4). Encoders only hash and route; they are rarely the
	// bottleneck.
	Encoders int
	// QueueCap bounds the intake queue and each per-station applier queue,
	// in pattern copies (default 1024). Smaller queues bound memory and
	// admission latency; larger ones absorb burstier producers. See
	// docs/OPERATIONS.md for sizing guidance.
	QueueCap int
	// FlushBatch is the most pattern copies one flush exchange carries
	// (default 256). An applier flushes when its batch fills or its
	// FlushInterval elapses, whichever is first.
	FlushBatch int
	// FlushInterval bounds how long an applier holds a non-empty batch
	// before flushing it (default 25ms) — the freshness bound for a
	// trickle workload.
	FlushInterval time.Duration
	// FlushTimeout bounds each flush exchange (default 10s); a flush that
	// exceeds it fails and its copies re-route.
	FlushTimeout time.Duration
	// Admission selects Block (default) or Shed when queues saturate.
	Admission Admission
	// TTL, when positive, expires every streamed pattern TTL after its
	// submission: a deadline wheel sweeps expired persons and drives
	// grouped Evict batches. Resubmitting a person extends their deadline.
	// Zero disables eviction.
	TTL time.Duration
	// Replication is the number of stations each pattern is copied to
	// (HRW placement targets, default cluster.DefaultReplication). Clamped
	// to the alive membership.
	Replication int
}

func (o Options) withDefaults() Options {
	if o.Encoders <= 0 {
		o.Encoders = 4
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 1024
	}
	if o.FlushBatch <= 0 {
		o.FlushBatch = 256
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 25 * time.Millisecond
	}
	if o.FlushTimeout <= 0 {
		o.FlushTimeout = 10 * time.Second
	}
	if o.Replication <= 0 {
		o.Replication = cluster.DefaultReplication
	}
	return o
}

// item is one pattern copy moving through the pipeline. The pattern slice
// is cloned once at Submit and shared read-only by every replica copy.
type item struct {
	person   core.PersonID
	pat      pattern.Pattern
	deadline time.Time // zero when TTL is off
	attempts int       // flush attempts consumed so far
}

// Ingestor is a running streaming pipeline over one cluster. All methods
// are safe for concurrent use; any number of goroutines may Submit.
type Ingestor struct {
	c    *cluster.Cluster
	opts Options

	// ctx is the pipeline's lifetime: encoders, appliers and the evictor
	// run until Close cancels it (after the final drain).
	ctx    context.Context
	cancel context.CancelFunc

	intake chan item
	closed atomic.Bool

	counters metrics.StreamCounters

	mu       sync.Mutex
	alive    []uint32            // dimatch:guardedby mu — HRW routing membership snapshot
	appliers map[uint32]*applier // dimatch:guardedby mu — one shard per station ever alive

	// pending counts accepted copies not yet in a terminal state (flushed,
	// abandoned); Flush waits for it to reach zero.
	pendMu   sync.Mutex
	pending  int64 // dimatch:guardedby pendMu
	pendCond *sync.Cond

	evictor     *evictor // nil when TTL is off
	settleReq   chan struct{}
	unsubscribe func()
	unregister  func()
	encWg       sync.WaitGroup
	appWg       sync.WaitGroup
}

// New starts a streaming pipeline over the cluster. The pipeline registers
// itself for membership-change notification (shards re-key when stations
// come and go) and as a Stats stream-health provider; Close releases both.
func New(c *cluster.Cluster, opts Options) (*Ingestor, error) {
	opts = opts.withDefaults()
	alive := c.AliveStationIDs()
	if len(alive) == 0 {
		return nil, cluster.ErrNoAliveStations
	}
	//dimatch:allow ctxflow — the pipeline outlives any one caller's context; Close cancels it after the final drain
	ctx, cancel := context.WithCancel(context.Background())
	in := &Ingestor{
		c:         c,
		opts:      opts,
		ctx:       ctx,
		cancel:    cancel,
		intake:    make(chan item, opts.QueueCap),
		appliers:  make(map[uint32]*applier, len(alive)),
		settleReq: make(chan struct{}, 1),
	}
	in.pendCond = sync.NewCond(&in.pendMu)
	in.mu.Lock()
	in.alive = alive
	for _, sid := range alive {
		in.appliers[sid] = in.newApplierLocked(sid)
	}
	in.mu.Unlock()
	if opts.TTL > 0 {
		in.evictor = newEvictor(in, opts.TTL)
	}
	for i := 0; i < opts.Encoders; i++ {
		in.encWg.Add(1)
		go in.encode()
	}
	in.encWg.Add(1)
	go in.settler()
	in.unsubscribe = c.OnMembershipChange(in.rekey)
	in.unregister = c.RegisterStreamStats(in.Report)
	return in, nil
}

// Submit admits one (person, pattern) into the pipeline. The pattern is
// cloned, so the caller may reuse its slice. Length mismatches return an
// error wrapping cluster.ErrLengthMismatch; all-zero patterns are skipped
// silently (no measurable activity means no pattern — the stations' own
// ingest rule). When the intake queue is full, Block admission waits for
// space (bounded by ctx) and Shed admission returns ErrOverloaded with the
// drop accounted. Admission is not application: an accepted pattern reaches
// its stations on the next batch flush; call Flush for a barrier.
func (in *Ingestor) Submit(ctx context.Context, person core.PersonID, pat pattern.Pattern) error {
	if ctx == nil {
		ctx = context.Background()
	}
	in.counters.Submitted.Add(1)
	if in.closed.Load() {
		in.counters.Rejected.Add(1)
		return ErrClosed
	}
	if err := ctx.Err(); err != nil {
		in.counters.Rejected.Add(1)
		return fmt.Errorf("%w: %w", cluster.ErrCancelled, err)
	}
	if len(pat) != in.c.PatternLength() {
		in.counters.Rejected.Add(1)
		return fmt.Errorf("%w: stream person %d pattern length %d, cluster is %d",
			cluster.ErrLengthMismatch, person, len(pat), in.c.PatternLength())
	}
	if pat.Sum() == 0 {
		in.counters.Rejected.Add(1)
		return nil
	}
	it := item{person: person, pat: pat.Clone()}
	if in.opts.TTL > 0 {
		it.deadline = time.Now().Add(in.opts.TTL)
	}

	// The pending count rises before the copy can possibly reach a
	// terminal state, so Flush never observes a spurious zero.
	in.pendAdd(1)
	if in.opts.Admission == Shed {
		select {
		case in.intake <- it:
		default:
			in.pendAdd(-1)
			in.counters.Shed.Add(1)
			return ErrOverloaded
		}
	} else {
		select {
		case in.intake <- it:
		default:
			// Slow path: the queue is full, the producer waits — that is
			// the backpressure engaging, and Blocked records it.
			in.counters.Blocked.Add(1)
			select {
			case in.intake <- it:
			case <-ctx.Done():
				in.pendAdd(-1)
				in.counters.Rejected.Add(1)
				return fmt.Errorf("%w: %w", cluster.ErrCancelled, ctx.Err())
			case <-in.ctx.Done():
				in.pendAdd(-1)
				in.counters.Rejected.Add(1)
				return ErrClosed
			}
		}
	}
	in.counters.Accepted.Add(1)
	return nil
}

// Flush is the barrier: it returns once every copy accepted before the call
// is in a terminal state — flushed to its station or abandoned after its
// retry budget. Appliers are kicked so partial batches go out immediately
// rather than waiting for their interval. Submissions racing the call
// extend the wait; quiesce producers first for a strict barrier.
func (in *Ingestor) Flush(ctx context.Context) error {
	if in.closed.Load() {
		return ErrClosed
	}
	return in.drain(ctx)
}

// drain is Flush without the closed check — Close's own final barrier.
func (in *Ingestor) drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for in.pendingCount() > 0 {
		in.kickAll()
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w: %w", cluster.ErrCancelled, ctx.Err())
		case <-in.ctx.Done():
			return ErrClosed
		case <-ticker.C:
		}
	}
	return nil
}

// closeDrainTimeout bounds Close's final drain: a cluster that stopped
// acking flushes must not wedge Close forever.
const closeDrainTimeout = 30 * time.Second

// Close drains the pipeline and stops it: new Submits fail with ErrClosed,
// everything already accepted is flushed (bounded by closeDrainTimeout),
// the TTL evictor and worker goroutines exit, and the membership and
// stats-provider registrations are released. Close is idempotent; the first
// call's drain error (if any) is returned.
func (in *Ingestor) Close() error {
	if in.closed.Swap(true) {
		return nil
	}
	in.unsubscribe()
	//dimatch:allow ctxflow — Close is the pipeline's ctx-less teardown API; closeDrainTimeout bounds the final drain instead of a caller ctx
	ctx, cancel := context.WithTimeout(context.Background(), closeDrainTimeout)
	err := in.drain(ctx)
	cancel()
	in.cancel()
	in.encWg.Wait()
	in.appWg.Wait()
	if in.evictor != nil {
		in.evictor.wait()
	}
	in.unregister()
	return err
}

// Report snapshots the pipeline's health: admission and flush totals plus
// per-station queue depth and flush/eviction counts (ascending station
// order; retired shards appear only while they still hold queued copies).
func (in *Ingestor) Report() *metrics.StreamStats {
	s := in.counters.Snapshot()
	in.mu.Lock()
	apps := make([]*applier, 0, len(in.appliers))
	for _, a := range in.appliers {
		apps = append(apps, a)
	}
	in.mu.Unlock()
	for _, a := range apps {
		depth := len(a.q) + int(a.assembling.Load())
		if a.retired.Load() && depth == 0 {
			continue
		}
		s.Stations = append(s.Stations, metrics.StreamStationStats{
			Station:         a.id,
			QueueDepth:      depth,
			QueueCap:        cap(a.q),
			Flushes:         a.flushes.Load(),
			FlushedPatterns: a.flushed.Load(),
			Evictions:       a.evictions.Load(),
		})
	}
	sortStationStats(s.Stations)
	return &s
}

// sortStationStats orders per-station entries ascending by station ID.
func sortStationStats(s []metrics.StreamStationStats) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].Station > s[j].Station; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

// pendAdd moves the pending-copy count and wakes Flush waiters at zero.
func (in *Ingestor) pendAdd(d int64) {
	in.pendMu.Lock()
	in.pending += d
	if in.pending == 0 {
		in.pendCond.Broadcast()
	}
	in.pendMu.Unlock()
}

// pendingCount returns the number of accepted copies not yet terminal.
func (in *Ingestor) pendingCount() int64 {
	in.pendMu.Lock()
	defer in.pendMu.Unlock()
	return in.pending
}

// encode is one encoder worker: pull from intake, route to shards.
func (in *Ingestor) encode() {
	defer in.encWg.Done()
	for {
		select {
		case it := <-in.intake:
			in.route(it)
		case <-in.ctx.Done():
			// Shutdown: Close drains via Flush before cancelling, so the
			// intake is normally empty here. Anything remaining (a drain
			// that timed out) is accounted as abandoned, keeping the
			// pending count truthful.
			for {
				select {
				case <-in.intake:
					in.counters.FlushFailures.Add(1)
					in.pendAdd(-1)
				default:
					return
				}
			}
		}
	}
}

// route fans one admitted pattern into its HRW target shards: placement
// intents are recorded BEFORE any copy is enqueued (the same
// intent-before-copies ordering Place uses, so a search racing the first
// flush dedupes replica reports instead of summing them), then one copy
// per target goes into that station's applier queue. A full applier queue
// blocks the encoder — backpressure propagating backward by design.
func (in *Ingestor) route(it item) {
	in.mu.Lock()
	alive := in.alive
	in.mu.Unlock()
	targets := placement.Pick(it.person, alive, in.opts.Replication)
	if len(targets) == 0 {
		in.counters.FlushFailures.Add(1)
		in.pendAdd(-1)
		return
	}
	in.c.NotePlaced([]core.PersonID{it.person}, in.opts.Replication)
	in.pendAdd(int64(len(targets) - 1))
	for _, sid := range targets {
		a := in.applierFor(sid)
		select {
		case a.q <- it:
		case <-in.ctx.Done():
			in.counters.FlushFailures.Add(1)
			in.pendAdd(-1)
		}
	}
}

// rekey is the membership-change hook: refresh the HRW routing snapshot,
// open shards for new stations and retire shards whose station left. A
// retired shard's applier keeps running — it re-routes everything still in
// (or arriving on) its queue to the survivors — so no acked producer ever
// loses a copy to a straggling enqueue.
func (in *Ingestor) rekey() {
	alive := in.c.AliveStationIDs()
	aliveSet := make(map[uint32]bool, len(alive))
	for _, sid := range alive {
		aliveSet[sid] = true
	}
	in.mu.Lock()
	in.alive = alive
	for sid, a := range in.appliers {
		a.retired.Store(!aliveSet[sid])
	}
	for _, sid := range alive {
		if in.appliers[sid] == nil {
			in.appliers[sid] = in.newApplierLocked(sid)
		}
	}
	in.mu.Unlock()
	// Kick every shard: retired ones must re-route their assembled batch
	// now, not when their flush interval happens to elapse.
	in.kickAll()
	// The membership mutation's own synchronous heal ran against whatever
	// copies had landed by then; flushes in flight during it look "lost"
	// to that pass and nothing else retries them. Ask the settler for a
	// follow-up reconciliation once the re-keyed shards drain.
	select {
	case in.settleReq <- struct{}{}:
	default: // a settle is already queued
	}
}

// settler is the pipeline's re-replication hook: after each membership
// change it waits for the re-keyed shards to drain, then runs one
// reconciliation pass so every streamed pattern is back at its full
// replication factor on the new membership — including patterns whose
// flushes were in flight during the mutation's own synchronous heal (that
// pass sees them as having no copy and leaves them for retry; this is the
// retry). Requests coalesce: changes arriving mid-settle fold into one
// follow-up pass.
func (in *Ingestor) settler() {
	defer in.encWg.Done()
	for {
		select {
		case <-in.settleReq:
			ctx, cancel := context.WithTimeout(in.ctx, in.opts.FlushTimeout)
			_ = in.drain(ctx)
			_, _ = in.c.Rebalance(ctx)
			cancel()
		case <-in.ctx.Done():
			return
		}
	}
}

// applierFor returns the shard for a station. Shards are never removed
// (only retired), so any station an encoder ever routed to resolves.
func (in *Ingestor) applierFor(sid uint32) *applier {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.appliers[sid]
}

// kickAll nudges every applier to flush its assembled batch immediately.
func (in *Ingestor) kickAll() {
	in.mu.Lock()
	apps := make([]*applier, 0, len(in.appliers))
	for _, a := range in.appliers {
		apps = append(apps, a)
	}
	in.mu.Unlock()
	for _, a := range apps {
		select {
		case a.kick <- struct{}{}:
		default: // a kick is already pending
		}
	}
}
