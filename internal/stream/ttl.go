package stream

import (
	"context"
	"sync"
	"time"

	"dimatch/internal/core"
)

// evictor is the pipeline's TTL deadline wheel. Every successfully flushed
// pattern copy registers (person, station, deadline); a sweeper goroutine
// ticks at a fraction of the TTL, collects persons whose deadline passed,
// and drives one grouped Unplace per sweep — which evicts the person from
// every alive station (robust to copies having moved in a heal since they
// were flushed), forgets the placement intent, and invalidates the
// summary-cache digests for the touched stations, so an expired person
// stops matching and stops routing in the same step.
//
// Resubmitting a person before expiry extends their deadline (note keeps
// the max). A person resubmitted in the tick-wide window while their
// previous incarnation's eviction is in flight may be evicted with it; the
// next resubmission restores them.
type evictor struct {
	in   *Ingestor
	ttl  time.Duration
	tick time.Duration
	done chan struct{} // closed when the sweeper exits

	mu sync.Mutex
	// deadlines is the authoritative expiry per live person (max over
	// their flushed copies).
	deadlines map[core.PersonID]time.Time // dimatch:guardedby mu
	// holders records which stations received a copy, for per-station
	// eviction accounting.
	holders map[core.PersonID]map[uint32]bool // dimatch:guardedby mu
	// buckets indexes persons by deadline-tick for cheap sweeps; a person
	// whose deadline moved is lazily re-bucketed when their stale bucket
	// comes due.
	buckets map[int64][]core.PersonID // dimatch:guardedby mu
}

func newEvictor(in *Ingestor, ttl time.Duration) *evictor {
	tick := ttl / 20
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	e := &evictor{
		in:        in,
		ttl:       ttl,
		tick:      tick,
		done:      make(chan struct{}),
		deadlines: make(map[core.PersonID]time.Time),
		holders:   make(map[core.PersonID]map[uint32]bool),
		buckets:   make(map[int64][]core.PersonID),
	}
	go e.run()
	return e
}

// note registers a flushed copy. Deadlines only ever extend: a refresh from
// a resubmission wins over the original expiry.
func (e *evictor) note(p core.PersonID, station uint32, deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.deadlines[p]; !ok || deadline.After(cur) {
		e.deadlines[p] = deadline
		b := deadline.UnixNano() / int64(e.tick)
		e.buckets[b] = append(e.buckets[b], p)
	}
	h := e.holders[p]
	if h == nil {
		h = make(map[uint32]bool, 2)
		e.holders[p] = h
	}
	h[station] = true
}

// wait blocks until the sweeper goroutine has exited (the pipeline context
// is cancelled first by Close).
func (e *evictor) wait() {
	<-e.done
}

func (e *evictor) run() {
	defer close(e.done)
	ticker := time.NewTicker(e.tick)
	defer ticker.Stop()
	for {
		select {
		case now := <-ticker.C:
			e.sweep(now)
		case <-e.in.ctx.Done():
			return
		}
	}
}

// sweep collects every person whose deadline passed and evicts them in one
// grouped Unplace. Unplace serializes with Place/Rebalance/heal under the
// cluster's heal lock, so eviction never interleaves with a reconciliation
// moving the same person's copies.
func (e *evictor) sweep(now time.Time) {
	nowBucket := now.UnixNano() / int64(e.tick)
	var expired []core.PersonID
	holders := make(map[core.PersonID][]uint32)
	e.mu.Lock()
	for b, persons := range e.buckets {
		if b > nowBucket {
			continue
		}
		delete(e.buckets, b)
		for _, p := range persons {
			dl, ok := e.deadlines[p]
			if !ok {
				continue // already evicted via an older bucket entry
			}
			if dl.After(now) {
				// Deadline was extended after this bucket entry was made:
				// re-bucket at the real expiry.
				nb := dl.UnixNano() / int64(e.tick)
				e.buckets[nb] = append(e.buckets[nb], p)
				continue
			}
			expired = append(expired, p)
			delete(e.deadlines, p)
			for sid := range e.holders[p] {
				holders[p] = append(holders[p], sid)
			}
			delete(e.holders, p)
		}
	}
	e.mu.Unlock()
	if len(expired) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(e.in.ctx, e.in.opts.FlushTimeout)
	err := e.in.c.Unplace(ctx, expired)
	cancel()
	if err != nil {
		// Re-arm everyone for the next sweep rather than leaking them.
		e.mu.Lock()
		retry := now.Add(e.tick)
		b := retry.UnixNano() / int64(e.tick)
		for _, p := range expired {
			if _, ok := e.deadlines[p]; ok {
				continue // resubmitted meanwhile; their new deadline rules
			}
			e.deadlines[p] = retry
			e.buckets[b] = append(e.buckets[b], p)
			for _, sid := range holders[p] {
				h := e.holders[p]
				if h == nil {
					h = make(map[uint32]bool, 2)
					e.holders[p] = h
				}
				h[sid] = true
			}
		}
		e.mu.Unlock()
		return
	}
	e.in.counters.TTLEvictions.Add(uint64(len(expired)))
	for _, p := range expired {
		for _, sid := range holders[p] {
			if a := e.in.applierFor(sid); a != nil {
				a.evictions.Add(1)
			}
		}
	}
}
