package stream

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/store"
	"dimatch/internal/store/wal"
)

// streamOptions sizes the filter explicitly so the small populations of
// these tests cannot hit Bloom false positives.
func streamOptions() cluster.Options {
	return cluster.Options{Params: core.Params{Bits: 1 << 16, Hashes: 4, Samples: 4, Epsilon: 0, Seed: 1}}
}

// newStreamCluster stands up an empty in-process cluster.
func newStreamCluster(t *testing.T, stations []uint32, length int) *cluster.Cluster {
	t.Helper()
	c, err := cluster.NewEmpty(streamOptions(), stations, length)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })
	return c
}

// searchPersons runs one single-local query and returns the retrieved set.
func searchPersons(t *testing.T, c *cluster.Cluster, local pattern.Pattern) map[core.PersonID]core.Result {
	t.Helper()
	out, err := c.Search(context.Background(), []core.Query{
		{ID: 1, Locals: []pattern.Pattern{local}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[core.PersonID]core.Result, len(out.PerQuery[1]))
	for _, r := range out.PerQuery[1] {
		got[r.Person] = r
	}
	return got
}

func TestStreamSubmitFlushSearch(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2, 3, 4}, 4)
	in, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	const n = 200
	for p := core.PersonID(100); p < 100+n; p++ {
		if err := in.Submit(ctx, p, pattern.Pattern{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	got := searchPersons(t, c, pattern.Pattern{1, 2, 3, 4})
	if len(got) != n {
		t.Fatalf("retrieved %d persons, want %d", len(got), n)
	}
	for p, r := range got {
		// Streamed patterns are replica-managed: both copies report, the
		// aggregation dedupes instead of summing (a sum of 2 would be
		// deleted as over-matched).
		if r.Score() != 1.0 {
			t.Fatalf("person %d scored %.3f, want 1", p, r.Score())
		}
		if r.Stations != cluster.DefaultReplication {
			t.Fatalf("person %d reported by %d stations, want %d replicas", p, r.Stations, cluster.DefaultReplication)
		}
	}
	if got := c.Placed(); got != n {
		t.Fatalf("Placed() = %d, want %d (streamed persons are placement-managed)", got, n)
	}

	rep := in.Report()
	if rep.Submitted != n || rep.Accepted != n || rep.Shed != 0 || rep.Rejected != 0 {
		t.Fatalf("accounting = %+v, want %d submitted and accepted", rep, n)
	}
	if rep.FlushedPatterns != uint64(n*cluster.DefaultReplication) {
		t.Fatalf("FlushedPatterns = %d, want %d copies", rep.FlushedPatterns, n*cluster.DefaultReplication)
	}
	if rep.FlushFailures != 0 {
		t.Fatalf("FlushFailures = %d, want 0", rep.FlushFailures)
	}
	var perStation uint64
	for _, s := range rep.Stations {
		perStation += s.FlushedPatterns
		if s.QueueDepth != 0 {
			t.Fatalf("station %d queue depth %d after Flush, want 0", s.Station, s.QueueDepth)
		}
	}
	if perStation != rep.FlushedPatterns {
		t.Fatalf("per-station flushed %d != total %d", perStation, rep.FlushedPatterns)
	}
}

func TestStreamValidationAndClose(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2}, 4)
	in, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := in.Submit(ctx, 1, pattern.Pattern{1, 2}); !errors.Is(err, cluster.ErrLengthMismatch) {
		t.Fatalf("short pattern error = %v, want ErrLengthMismatch", err)
	}
	// All-zero patterns are skipped silently (stations drop them anyway).
	if err := in.Submit(ctx, 2, pattern.Pattern{0, 0, 0, 0}); err != nil {
		t.Fatalf("all-zero pattern error = %v, want nil", err)
	}
	rep := in.Report()
	if rep.Rejected != 2 || rep.Accepted != 0 {
		t.Fatalf("accounting = %+v, want 2 rejected, 0 accepted", rep)
	}

	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if err := in.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil (idempotent)", err)
	}
	if err := in.Submit(ctx, 3, pattern.Pattern{1, 2, 3, 4}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := in.Flush(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close = %v, want ErrClosed", err)
	}
}

// TestStreamShedAccounting saturates a deliberately tiny pipeline in shed
// mode and verifies overload drops instead of blocking, with every drop
// accounted: Accepted + Shed + Rejected == Submitted, exactly.
func TestStreamShedAccounting(t *testing.T) {
	c := newStreamCluster(t, []uint32{1}, 4)
	in, err := New(c, Options{
		QueueCap:    1,
		FlushBatch:  1,
		Encoders:    1,
		Admission:   Shed,
		Replication: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := core.PersonID(1 + g*500 + i)
				_ = in.Submit(ctx, p, pattern.Pattern{1, 2, 3, 4})
			}
		}()
	}
	wg.Wait()
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	rep := in.Report()
	if rep.Shed == 0 {
		t.Fatalf("Shed = 0 over %d submissions through a 1-deep queue; backpressure never engaged", rep.Submitted)
	}
	if rep.Accepted+rep.Shed+rep.Rejected != rep.Submitted {
		t.Fatalf("accounting broken: accepted %d + shed %d + rejected %d != submitted %d",
			rep.Accepted, rep.Shed, rep.Rejected, rep.Submitted)
	}
	if rep.FlushFailures != 0 {
		t.Fatalf("FlushFailures = %d, want 0 (shed drops at admission, never after)", rep.FlushFailures)
	}
	// Everything accepted must be searchable.
	got := searchPersons(t, c, pattern.Pattern{1, 2, 3, 4})
	if uint64(len(got)) != rep.Accepted {
		t.Fatalf("retrieved %d persons, want the %d accepted", len(got), rep.Accepted)
	}
}

// TestStreamBlockAccounting: the same saturation in block mode sheds
// nothing — every submission waits its turn and lands.
func TestStreamBlockAccounting(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2}, 4)
	in, err := New(c, Options{
		QueueCap:    1,
		FlushBatch:  1,
		Encoders:    1,
		Admission:   Block,
		Replication: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	const n = 400
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < n/4; i++ {
				p := core.PersonID(1 + g*(n/4) + i)
				if err := in.Submit(ctx, p, pattern.Pattern{2, 2, 2, 2}); err != nil {
					t.Errorf("block-mode Submit failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	rep := in.Report()
	if rep.Shed != 0 {
		t.Fatalf("Shed = %d in block mode, want 0", rep.Shed)
	}
	if rep.Accepted != n || rep.Submitted != n {
		t.Fatalf("accounting = %+v, want %d accepted", rep, n)
	}
	if rep.Blocked == 0 {
		t.Fatalf("Blocked = 0 over %d submissions through a 1-deep queue; expected waits", n)
	}
	got := searchPersons(t, c, pattern.Pattern{2, 2, 2, 2})
	if len(got) != n {
		t.Fatalf("retrieved %d persons, want %d", len(got), n)
	}
}

// TestStreamTTLChurn: TTL-expired patterns stop matching, the stations'
// resident stores shrink, placement intents are released, and eviction is
// accounted — while a refreshed person out-lives their original deadline.
func TestStreamTTLChurn(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2, 3}, 4)
	const ttl = 400 * time.Millisecond
	in, err := New(c, Options{TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	const n = 30
	for p := core.PersonID(100); p < 100+n; p++ {
		if err := in.Submit(ctx, p, pattern.Pattern{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if got := searchPersons(t, c, pattern.Pattern{1, 2, 3, 4}); len(got) != n {
		t.Fatalf("retrieved %d persons before expiry, want %d", len(got), n)
	}

	// Keep one person alive by resubmitting them halfway through the TTL.
	time.Sleep(ttl / 2)
	if err := in.Submit(ctx, 100, pattern.Pattern{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Everyone but the refreshed person expires within one TTL + sweep
	// slack; poll rather than assume scheduling precision.
	deadline := time.Now().Add(10 * ttl)
	for {
		if in.Report().TTLEvictions >= n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TTLEvictions = %d after %v, want >= %d", in.Report().TTLEvictions, 10*ttl, n-1)
		}
		time.Sleep(ttl / 20)
	}
	got := searchPersons(t, c, pattern.Pattern{1, 2, 3, 4})
	for p := core.PersonID(101); p < 100+n; p++ {
		if _, ok := got[p]; ok {
			t.Fatalf("person %d still matches after TTL expiry", p)
		}
	}
	if _, ok := got[100]; !ok {
		t.Fatalf("refreshed person 100 expired with the cohort; resubmission must extend the deadline")
	}

	// Expiry must release storage and placement, not just search results.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.DefaultReplication // person 100's copies
	if st.TotalResidents() != want {
		t.Fatalf("TotalResidents = %d after churn, want %d", st.TotalResidents(), want)
	}
	if got := c.Placed(); got != 1 {
		t.Fatalf("Placed() = %d after churn, want 1", got)
	}
	rep := in.Report()
	var perStation uint64
	for _, s := range rep.Stations {
		perStation += s.Evictions
	}
	if perStation == 0 {
		t.Fatalf("per-station eviction accounting empty: %+v", rep.Stations)
	}
}

// TestStreamRemoveStationMidStream: removing a station under sustained
// ingest must re-key its shard onto the survivors without losing a single
// acked pattern — the acceptance bar for membership churn.
func TestStreamRemoveStationMidStream(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2, 3, 4}, 4)
	in, err := New(c, Options{FlushBatch: 8, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	const n = 600
	errs := make(chan error, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for p := core.PersonID(1); p <= n; p++ {
			if err := in.Submit(ctx, p, pattern.Pattern{1, 2, 3, 4}); err != nil {
				select {
				case errs <- fmt.Errorf("submit %d: %w", p, err):
				default:
				}
				return
			}
		}
	}()

	// Remove a station mid-stream, then a second one for good measure: the
	// retired shards must drain onto the survivors.
	time.Sleep(2 * time.Millisecond)
	if err := c.RemoveStation(ctx, 2); err != nil {
		t.Fatal(err)
	}
	<-done
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// The pipeline's settler re-replicates patterns whose flushes were in
	// flight during the removal's synchronous heal. Wait for it to restore
	// full replication before taking the second station away — without the
	// settle, a pattern whose surviving copy sat on station 4 would go down
	// with it.
	waitDeadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.TotalResidents() == n*cluster.DefaultReplication {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatalf("TotalResidents = %d, want %d; settle never restored replication", st.TotalResidents(), n*cluster.DefaultReplication)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := c.RemoveStation(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	rep := in.Report()
	if rep.Accepted != n {
		t.Fatalf("accepted %d, want %d", rep.Accepted, n)
	}
	if rep.FlushFailures != 0 {
		t.Fatalf("FlushFailures = %d; every acked pattern must survive the re-key", rep.FlushFailures)
	}
	got := searchPersons(t, c, pattern.Pattern{1, 2, 3, 4})
	if len(got) != n {
		t.Fatalf("retrieved %d persons after removals, want all %d acked", len(got), n)
	}
	for p, r := range got {
		if r.Score() != 1.0 {
			t.Fatalf("person %d scored %.3f after re-key, want 1", p, r.Score())
		}
	}
}

// TestStreamSearchInterleaving runs sustained ingest, concurrent searches
// and a station kill together — the -race exercise for the whole pipeline.
// Every search must see full recall over the prefix known flushed when it
// started.
func TestStreamSearchInterleaving(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2, 3, 4, 5}, 4)
	in, err := New(c, Options{FlushBatch: 16, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	const n = 400
	// Flush checkpoints: after each hundred, barrier and record the prefix.
	var mu sync.Mutex
	flushed := core.PersonID(0)
	stop := make(chan struct{})
	var searchers sync.WaitGroup
	for w := 0; w < 3; w++ {
		searchers.Add(1)
		go func() {
			defer searchers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				want := flushed
				mu.Unlock()
				out, err := c.Search(context.Background(), []core.Query{
					{ID: 1, Locals: []pattern.Pattern{{1, 2, 3, 4}}},
				})
				if err != nil {
					t.Errorf("concurrent search failed: %v", err)
					return
				}
				got := make(map[core.PersonID]bool, len(out.PerQuery[1]))
				for _, r := range out.PerQuery[1] {
					got[r.Person] = true
				}
				for p := core.PersonID(1); p <= want; p++ {
					if !got[p] {
						t.Errorf("person %d flushed before the search but not retrieved", p)
						return
					}
				}
			}
		}()
	}

	killed := false
	for p := core.PersonID(1); p <= n; p++ {
		if err := in.Submit(ctx, p, pattern.Pattern{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		if p%100 == 0 {
			if err := in.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			flushed = p
			mu.Unlock()
			if !killed {
				killed = true
				if err := c.KillStation(3); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	close(stop)
	searchers.Wait()
	if t.Failed() {
		return
	}

	rep := in.Report()
	if rep.Accepted != n {
		t.Fatalf("accepted %d, want %d", rep.Accepted, n)
	}
	got := searchPersons(t, c, pattern.Pattern{1, 2, 3, 4})
	if len(got) != n {
		t.Fatalf("retrieved %d persons at the end, want %d", len(got), n)
	}
}

// TestStreamStatsSurface: Cluster.Stats carries the merged pipeline health
// while pipelines are registered and drops it after the last Close.
func TestStreamStatsSurface(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2}, 4)
	ctx := context.Background()

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream != nil {
		t.Fatalf("Stats.Stream = %+v before any pipeline, want nil", st.Stream)
	}

	a, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for p := core.PersonID(1); p <= 10; p++ {
		if err := a.Submit(ctx, p, pattern.Pattern{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
		if err := b.Submit(ctx, p+100, pattern.Pattern{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if err := b.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream == nil {
		t.Fatal("Stats.Stream nil with two pipelines registered")
	}
	if st.Stream.Accepted != 20 {
		t.Fatalf("merged Accepted = %d, want 20 across both pipelines", st.Stream.Accepted)
	}
	for i := 1; i < len(st.Stream.Stations); i++ {
		if st.Stream.Stations[i-1].Station >= st.Stream.Stations[i].Station {
			t.Fatalf("per-station entries not ascending: %+v", st.Stream.Stations)
		}
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stream != nil {
		t.Fatalf("Stats.Stream = %+v after Close, want nil", st.Stream)
	}
}

// TestStreamRerouteOnKill pins the retired-shard re-key path directly: a
// long flush interval parks copies in the appliers' assembling batches,
// the kill retires one shard, and the kick makes it re-route its batch to
// the survivor — nothing is lost, everything lands.
func TestStreamRerouteOnKill(t *testing.T) {
	c := newStreamCluster(t, []uint32{1, 2}, 3)
	in, err := New(c, Options{
		FlushBatch:    1 << 20,     // never fill a batch...
		FlushInterval: time.Hour,   // ...and never time one out: only a
		FlushTimeout:  time.Second, // kick (retirement, Flush) dispatches
	})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	ctx := context.Background()

	const n = 24
	for p := core.PersonID(1); p <= n; p++ {
		if err := in.Submit(ctx, p, pattern.Pattern{4, 5, 6}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the encoders to fan every copy out to the two shards
	// (pending stabilizes at n*2 once the intake is drained).
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep := in.Report()
		depth := 0
		for _, s := range rep.Stations {
			depth += s.QueueDepth
		}
		if depth == n*cluster.DefaultReplication {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("copies never reached the shards: %+v", rep)
		}
		time.Sleep(time.Millisecond)
	}

	if err := c.KillStation(2); err != nil {
		t.Fatal(err)
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	rep := in.Report()
	if rep.Rerouted == 0 {
		t.Fatalf("kill of a loaded shard must re-route its copies: %+v", rep)
	}
	if rep.FlushFailures != 0 {
		t.Fatalf("re-keying lost %d copies", rep.FlushFailures)
	}
	got := searchPersons(t, c, pattern.Pattern{4, 5, 6})
	if len(got) != n {
		t.Fatalf("retrieved %d persons after the kill, want %d", len(got), n)
	}
}

func TestAdmissionString(t *testing.T) {
	if Block.String() != "block" || Shed.String() != "shed" {
		t.Fatalf("Admission strings: %q, %q", Block, Shed)
	}
	if got := Admission(42).String(); got != "Admission(42)" {
		t.Fatalf("unknown admission String() = %q", got)
	}
}

// TestStreamFlushDurable pins the pipeline half of station persistence: a
// flushed (acked) streaming batch is on the station's WAL before the ack, so
// a station hard-stopped after Flush recovers every streamed copy it held —
// without the pipeline resubmitting anything.
func TestStreamFlushDurable(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	ids := []uint32{1, 2, 3}
	stores := make(map[uint32]store.Store, len(ids))
	for _, id := range ids {
		stores[id] = openWAL(t, dir, id)
	}
	c, err := cluster.NewStored(streamOptions(), stores, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() { _ = c.Shutdown() })

	in, err := New(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()

	const n = 60
	for p := core.PersonID(1); p <= n; p++ {
		if err := in.Submit(ctx, p, pattern.Pattern{9, 9, 9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := in.Flush(ctx); err != nil {
		t.Fatal(err)
	}

	// Hard-stop and recover every station in turn, so every streamed copy
	// crosses a restart exactly once.
	for _, id := range ids {
		if err := c.KillStation(id); err != nil {
			t.Fatal(err)
		}
		if err := c.RemoveStation(ctx, id); err != nil {
			t.Fatal(err)
		}
		if err := c.AddStoredStation(ctx, id, nil, openWAL(t, dir, id)); err != nil {
			t.Fatal(err)
		}
	}

	got := searchPersons(t, c, pattern.Pattern{9, 9, 9})
	if len(got) != n {
		t.Fatalf("retrieved %d persons after restarts, want %d", len(got), n)
	}
	rep := in.Report()
	if rep.FlushFailures != 0 {
		t.Fatalf("FlushFailures = %d, want 0 — recovery must not need a resubmit", rep.FlushFailures)
	}
}

// openWAL opens one station's WAL store under dir.
func openWAL(t *testing.T, dir string, id uint32) *wal.Store {
	t.Helper()
	s, err := wal.Open(filepath.Join(dir, fmt.Sprintf("station-%d", id)), wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	return s
}
