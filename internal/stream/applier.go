package stream

import (
	"context"
	"sync/atomic"
	"time"

	"dimatch/internal/core"
	"dimatch/internal/pattern"
	"dimatch/internal/placement"
)

// applier is one station's shard of the pipeline: a single goroutine owning
// a bounded queue of pattern copies routed to its station. Because every
// copy for a station funnels through exactly one applier, flushes to
// different stations proceed with no cross-worker locking, and copies for
// one station never race each other.
//
// A shard whose station leaves the membership is retired, never deleted:
// its goroutine keeps consuming, re-routing every copy it holds (or that a
// racing encoder still enqueues) to the survivors. That is what guarantees
// RemoveStation mid-stream re-keys the shard without losing acked patterns.
type applier struct {
	in *Ingestor
	id uint32

	q    chan item
	kick chan struct{} // capacity 1: "flush your batch now"

	retired atomic.Bool
	// assembling is the size of the batch currently being built — queue
	// depth the bounded channel no longer shows.
	assembling atomic.Int64

	flushes   atomic.Uint64
	flushed   atomic.Uint64
	evictions atomic.Uint64
}

// newApplierLocked creates and starts a station shard. Callers hold in.mu.
func (in *Ingestor) newApplierLocked(sid uint32) *applier {
	a := &applier{
		in:   in,
		id:   sid,
		q:    make(chan item, in.opts.QueueCap),
		kick: make(chan struct{}, 1),
	}
	in.appWg.Add(1)
	go a.run()
	return a
}

// run is the shard loop: assemble copies into a batch, flush when the batch
// fills, the flush interval elapses, or a kick arrives. On retirement the
// assembled batch and everything still queued re-route to the survivors.
func (a *applier) run() {
	defer a.in.appWg.Done()
	var batch []item
	timer := time.NewTimer(a.in.opts.FlushInterval)
	if !timer.Stop() {
		<-timer.C
	}
	armed := false
	dispatch := func() {
		if armed {
			if !timer.Stop() {
				<-timer.C
			}
			armed = false
		}
		if len(batch) == 0 {
			return
		}
		if a.retired.Load() {
			a.in.rerouteAll(batch, a.id)
		} else {
			a.flush(batch)
		}
		a.assembling.Store(0)
		batch = nil
	}
	for {
		select {
		case it := <-a.q:
			if a.retired.Load() {
				// Re-route the straggler immediately; the assembled batch
				// (if any) goes with it.
				batch = append(batch, it)
				a.assembling.Add(1)
				dispatch()
				continue
			}
			batch = append(batch, it)
			a.assembling.Add(1)
			if len(batch) >= a.in.opts.FlushBatch {
				dispatch()
			} else if !armed {
				timer.Reset(a.in.opts.FlushInterval)
				armed = true
			}
		case <-timer.C:
			armed = false
			dispatch()
		case <-a.kick:
			dispatch()
		case <-a.in.ctx.Done():
			// Shutdown. Close drains via Flush first, so batch and queue
			// are normally empty; account anything left as abandoned.
			for range batch {
				a.in.counters.FlushFailures.Add(1)
				a.in.pendAdd(-1)
			}
			for {
				select {
				case <-a.q:
					a.in.counters.FlushFailures.Add(1)
					a.in.pendAdd(-1)
				default:
					return
				}
			}
		}
	}
}

// flush sends one batched, acknowledged ingest exchange to the shard's
// station. Success registers TTL deadlines and settles every copy; failure
// re-routes the whole batch (each copy spends one attempt), which covers
// both a dead link and a station already removed from the membership.
func (a *applier) flush(batch []item) {
	m := make(map[core.PersonID]pattern.Pattern, len(batch))
	for _, it := range batch {
		m[it.person] = it.pat // duplicate persons dedup latest-wins
	}
	ctx, cancel := context.WithTimeout(a.in.ctx, a.in.opts.FlushTimeout)
	err := a.in.c.Ingest(ctx, a.id, m)
	cancel()
	if err != nil {
		a.in.rerouteAll(batch, a.id)
		return
	}
	a.flushes.Add(1)
	a.flushed.Add(uint64(len(batch)))
	a.in.counters.Flushes.Add(1)
	a.in.counters.FlushedPatterns.Add(uint64(len(batch)))
	if ev := a.in.evictor; ev != nil {
		for _, it := range batch {
			ev.note(it.person, a.id, it.deadline)
		}
	}
	for range batch {
		a.in.pendAdd(-1)
	}
}

// rerouteAll re-keys a failed or retired shard's copies onto the current
// membership, avoiding the station that just failed them.
func (in *Ingestor) rerouteAll(batch []item, avoid uint32) {
	for _, it := range batch {
		in.reroute(it, avoid)
	}
}

// reroute re-keys one copy after a flush failure or shard retirement: spend
// one attempt, recompute the person's HRW targets over the current
// membership, and fan the copy to every active target that is not the
// failed station. Fanning to the full target set — not just one survivor —
// matters: the sibling copy may itself have ranked onto the failed station,
// and re-keying both onto a single survivor would silently collapse the
// replication factor (duplicate flushes to a station already holding the
// person are idempotent replaces). Enqueues are bounded (FlushTimeout)
// rather than indefinite so two mutually failing shards cannot deadlock
// re-routing into each other's full queues; a copy that cannot land within
// its budget is abandoned and counted.
func (in *Ingestor) reroute(it item, avoid uint32) {
	in.counters.Rerouted.Add(1)
	it.attempts++
	if it.attempts >= maxFlushAttempts {
		in.counters.FlushFailures.Add(1)
		in.pendAdd(-1)
		return
	}
	in.mu.Lock()
	alive := in.alive
	in.mu.Unlock()
	targets := placement.Pick(it.person, alive, in.opts.Replication)
	dsts := make([]*applier, 0, len(targets))
	for _, sid := range targets {
		if sid == avoid {
			continue
		}
		if a := in.applierFor(sid); a != nil && !a.retired.Load() {
			dsts = append(dsts, a)
		}
	}
	if len(dsts) == 0 {
		// Nowhere else to go (single station, or membership collapsed to
		// the failed one): retry the same shard until the budget runs out.
		if len(targets) > 0 {
			if a := in.applierFor(targets[0]); a != nil {
				dsts = append(dsts, a)
			}
		}
	}
	if len(dsts) == 0 {
		in.counters.FlushFailures.Add(1)
		in.pendAdd(-1)
		return
	}
	in.pendAdd(int64(len(dsts) - 1))
	timer := time.NewTimer(in.opts.FlushTimeout)
	defer timer.Stop()
	for _, dst := range dsts {
		select {
		case dst.q <- it:
		case <-in.ctx.Done():
			in.counters.FlushFailures.Add(1)
			in.pendAdd(-1)
		case <-timer.C:
			in.counters.FlushFailures.Add(1)
			in.pendAdd(-1)
		}
	}
}
