package dimatch_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files the docs CI job guards.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ARCHITECTURE.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

// mdLink matches inline markdown links: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLocalLinks walks every local link in README, ARCHITECTURE and
// docs/* and fails on targets that do not exist in the repository — the
// docs CI job's link check. External links (http/https/mailto) are out of
// scope: CI must not flake on network weather.
func TestDocsLocalLinks(t *testing.T) {
	for _, f := range docFiles(t) {
		body, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			if target == "" {
				continue // pure fragment: same-file anchor
			}
			resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken local link %q (resolved %s)", f, m[1], resolved)
			}
		}
	}
}

// TestDocsBaselinesReferenced pins the docs/bench contract: every recorded
// baseline committed at the repo root is linked from the README, so a new
// baseline cannot ship undocumented.
func TestDocsBaselinesReferenced(t *testing.T) {
	baselines, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(baselines) == 0 {
		t.Fatal("no committed baselines found")
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range baselines {
		if !strings.Contains(string(readme), b) {
			t.Errorf("README.md does not mention committed baseline %s", b)
		}
	}
}
