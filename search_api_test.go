package dimatch

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestConcurrentSearchesPublicAPI is the acceptance check at the public
// surface: two concurrent Search calls with different strategies and
// per-call options over one city cluster return exactly their sequential
// results. Run under -race in CI.
func TestConcurrentSearchesPublicAPI(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 60
	cfg.Stations = 25
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Options{
		Params:   Params{Samples: 8, Epsilon: 1, Seed: 42, PositionSalted: true},
		MinScore: 0.9,
	}, StationData(city))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown() //nolint:errcheck // test teardown

	query := QueryFromPerson(city, 1, 0)
	calls := []struct {
		name string
		opts []SearchOption
	}{
		{"wbf-top5", []SearchOption{WithStrategy(StrategyWBF), WithTopK(5)}},
		{"naive-all", []SearchOption{WithStrategy(StrategyNaive), WithMinScore(0)}},
	}

	sequential := make([][]PersonID, len(calls))
	for i, call := range calls {
		out, err := c.Search(context.Background(), []Query{query}, call.opts...)
		if err != nil {
			t.Fatalf("%s sequential: %v", call.name, err)
		}
		sequential[i] = out.Persons(1)
	}

	var wg sync.WaitGroup
	concurrent := make([][]PersonID, len(calls))
	errs := make([]error, len(calls))
	for i, call := range calls {
		i, call := i, call
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := c.Search(context.Background(), []Query{query}, call.opts...)
			if err != nil {
				errs[i] = err
				return
			}
			concurrent[i] = out.Persons(1)
		}()
	}
	wg.Wait()
	for i, call := range calls {
		if errs[i] != nil {
			t.Fatalf("%s concurrent: %v", call.name, errs[i])
		}
		if len(concurrent[i]) != len(sequential[i]) {
			t.Fatalf("%s: concurrent %v != sequential %v", call.name, concurrent[i], sequential[i])
		}
		for j := range concurrent[i] {
			if concurrent[i][j] != sequential[i][j] {
				t.Fatalf("%s: concurrent %v != sequential %v", call.name, concurrent[i], sequential[i])
			}
		}
	}
}

// TestSearchCancelledContextPublicAPI checks the sentinel surface: a
// pre-cancelled context returns ErrCancelled wrapping context.Canceled, and
// the cluster keeps working afterwards.
func TestSearchCancelledContextPublicAPI(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 30
	cfg.Stations = 16
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Options{
		Params: Params{Samples: 8, Epsilon: 1, Seed: 7, PositionSalted: true},
	}, StationData(city))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown() //nolint:errcheck // test teardown

	query := QueryFromPerson(city, 1, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Search(ctx, []Query{query}); !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if _, err := c.Search(context.Background(), []Query{query}); err != nil {
		t.Fatalf("search after cancelled call: %v", err)
	}
	if _, err := c.Search(context.Background(), nil); !errors.Is(err, ErrNoQueries) {
		t.Fatalf("err = %v, want ErrNoQueries", err)
	}
}

// TestDeprecatedSearchWithStrategy checks the migration shim agrees with
// the context API it wraps.
func TestDeprecatedSearchWithStrategy(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 30
	cfg.Stations = 16
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Options{
		Params:   Params{Samples: 8, Epsilon: 1, Seed: 7, PositionSalted: true},
		MinScore: 0.9,
	}, StationData(city))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown() //nolint:errcheck // test teardown

	query := QueryFromPerson(city, 1, 0)
	old, err := c.SearchWithStrategy([]Query{query}, StrategyWBF)
	if err != nil {
		t.Fatal(err)
	}
	niu, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	a, b := old.Persons(1), niu.Persons(1)
	if len(a) != len(b) {
		t.Fatalf("shim %v != new API %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shim %v != new API %v", a, b)
		}
	}
}

// TestParseStrategyPublic pins the re-exported parser.
func TestParseStrategyPublic(t *testing.T) {
	s, err := ParseStrategy("bf")
	if err != nil || s != StrategyBF {
		t.Fatalf("ParseStrategy(bf) = %v, %v", s, err)
	}
	if _, err := ParseStrategy("nope"); !errors.Is(err, ErrUnknownStrategy) {
		t.Fatalf("err = %v, want ErrUnknownStrategy", err)
	}
}
