// examples_test.go mirrors every code snippet in README.md, so the
// documentation cannot drift from the API: if a snippet stops compiling or
// behaving as the text claims, this file fails the build.
package dimatch_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"dimatch"
)

// TestReadmeQuickstartSnippet is the README "Quickstart" block, verbatim
// apart from capturing output instead of printing it.
func TestReadmeQuickstartSnippet(t *testing.T) {
	// Station-major data: station → person → local pattern.
	data := map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {10: {2, 2, 2}, 11: {3, 4, 5}},
	}
	c, _ := dimatch.NewCluster(dimatch.Options{TopK: 10}, data)
	defer c.Shutdown()

	// Person 10's global pattern {3,4,5} is split across stations 0 and 1;
	// the query carries the pieces.
	q := dimatch.Query{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}}}
	out, _ := c.Search(context.Background(), []dimatch.Query{q},
		dimatch.WithVerify(true))

	// The README comment promises 10 at 1.0 and 11 at 1.0 ({3,4,5} whole).
	got := map[dimatch.PersonID]float64{}
	for _, r := range out.PerQuery[1] {
		got[r.Person] = r.Score()
	}
	if len(got) != 2 || got[10] != 1.0 || got[11] != 1.0 {
		t.Fatalf("quickstart results %v, README promises persons 10 and 11 at 1.0", got)
	}
}

// TestReadmeLifecycleSnippet is the README "Live-cluster lifecycle" block:
// every statement of the snippet, run against a cluster that has station 7
// and a dialled TCP link for station 100.
func TestReadmeLifecycleSnippet(t *testing.T) {
	c, err := dimatch.NewCluster(dimatch.Options{}, map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		7: {1: {1, 1, 1}},
		8: {2: {2, 0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	// The snippet's free variables: locals for the in-process station and
	// an established link whose far end serves station 100.
	locals := map[dimatch.PersonID]dimatch.Pattern{3: {0, 1, 2}}
	ln, err := dimatch.Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stationLink, err := dimatch.Dial(ln.Addr(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		_ = dimatch.ServeStation(100, map[dimatch.PersonID]dimatch.Pattern{4: {5, 5, 5}}, stationLink)
	}()
	link, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}

	// ---- the snippet, statement for statement ----
	ctx := context.Background()

	// Route freshly observed call data to the station that saw it.
	err = c.Ingest(ctx, 7, map[dimatch.PersonID]dimatch.Pattern{
		4711: {0, 3, 1}, // person 4711's new local pattern at station 7
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drop expired or opted-out residents.
	err = c.Evict(ctx, 7, []dimatch.PersonID{4711})
	if err != nil {
		t.Fatal(err)
	}

	// Grow and shrink membership on the running cluster.
	err = c.AddStation(ctx, 99, locals) // in-process station
	if err != nil {
		t.Fatal(err)
	}
	err = c.AddStationLink(ctx, 100, link) // remote station over TCP
	if err != nil {
		t.Fatal(err)
	}
	err = c.RemoveStation(ctx, 99) // leaves the next epoch
	if err != nil {
		t.Fatal(err)
	}

	// Per-station resident counts and storage bytes, fetched over the wire
	// and cached per epoch.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(st.TotalResidents(), st.TotalStorageBytes())
	// ---- end of snippet ----

	// Stations 7, 8 and the TCP-joined 100 remain: three residents.
	if st.TotalResidents() != 3 {
		t.Fatalf("TotalResidents = %d, want 3 (stations 7, 8, 100)", st.TotalResidents())
	}
	if c.Stations() != 3 {
		t.Fatalf("Stations = %d, want 3", c.Stations())
	}
}

// TestReadmeStrategyTable backs the README strategy table's claims: naive
// answers exactly, BF cannot attribute candidates to queries, WBF ranks by
// weights summing to 1 for true matches.
func TestReadmeStrategyTable(t *testing.T) {
	data := map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {10: {2, 2, 2}, 11: {3, 4, 5}, 12: {9, 0, 0}},
	}
	c, err := dimatch.NewCluster(dimatch.Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()
	queries := []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}}},
		{ID: 2, Locals: []dimatch.Pattern{{9, 0, 0}}},
	}

	// Naive: exact answers (the oracle's result through the wire).
	naive, err := c.Search(ctx, queries, dimatch.WithStrategy(dimatch.StrategyNaive))
	if err != nil {
		t.Fatal(err)
	}
	if got := naive.Persons(2); len(got) != 1 || got[0] != 12 {
		t.Fatalf("naive query 2 = %v, want exactly [12]", got)
	}

	// BF: every query receives the same unattributed candidate list.
	bf, err := c.Search(ctx, queries, dimatch.WithStrategy(dimatch.StrategyBF))
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := bf.Persons(1), bf.Persons(2)
	if len(p1) != len(p2) {
		t.Fatalf("BF per-query lists differ in length: %v vs %v", p1, p2)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("BF attributed candidates per query: %v vs %v", p1, p2)
		}
	}

	// WBF: true matches score exactly 1 (weights sum to the full partition).
	wbf, err := c.Search(ctx, queries, dimatch.WithStrategy(dimatch.StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range wbf.PerQuery[1] {
		if r.Person == 10 && r.Score() != 1.0 {
			t.Fatalf("WBF person 10 score %v, want 1.0", r.Score())
		}
	}
	if len(wbf.PerQuery[2]) == 0 || wbf.PerQuery[2][0].Person != 12 {
		t.Fatalf("WBF query 2 = %v, want person 12 ranked first", wbf.PerQuery[2])
	}
}

// TestReadmeBatchingClaims backs the "Batched searches" section: default
// batching packs a multi-query search into one exchange per station,
// WithBatching(1) reproduces the legacy per-query traffic, and results are
// identical either way.
func TestReadmeBatchingClaims(t *testing.T) {
	data := map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {10: {2, 2, 2}, 11: {3, 4, 5}},
	}
	c, err := dimatch.NewCluster(dimatch.Options{}, data)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()
	queries := []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}}},
		{ID: 2, Locals: []dimatch.Pattern{{3, 4, 5}}},
		{ID: 3, Locals: []dimatch.Pattern{{9, 9, 9}}},
	}

	batched, err := c.Search(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := c.Search(ctx, queries, dimatch.WithBatching(1))
	if err != nil {
		t.Fatal(err)
	}
	if batched.Cost.MessagesDown != 2 || batched.Cost.Batches != 1 {
		t.Fatalf("batched: %d msgs down, %d rounds; want one exchange per station",
			batched.Cost.MessagesDown, batched.Cost.Batches)
	}
	if legacy.Cost.MessagesDown != 6 || legacy.Cost.Batches != 0 {
		t.Fatalf("legacy: %d msgs down, %d rounds; want one frame per query per station",
			legacy.Cost.MessagesDown, legacy.Cost.Batches)
	}
	for _, q := range queries {
		b, l := batched.PerQuery[q.ID], legacy.PerQuery[q.ID]
		if len(b) != len(l) {
			t.Fatalf("query %d: %d vs %d results", q.ID, len(b), len(l))
		}
		for i := range b {
			if b[i].Person != l[i].Person || b[i].Numerator != l[i].Numerator {
				t.Fatalf("query %d result %d differs between modes", q.ID, i)
			}
		}
	}
}

// TestReadmeRoutingSnippet is the README "Summary-routed search" block: the
// snippet's two searches, run against a cluster whose stores are separated
// enough for routing to prune, plus the section's identical-results claim.
func TestReadmeRoutingSnippet(t *testing.T) {
	c, err := dimatch.NewCluster(dimatch.Options{}, map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {20: {50, 60, 70}},
		2: {30: {500, 600, 700}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()
	queries := []dimatch.Query{{ID: 1, Locals: []dimatch.Pattern{{50, 60, 70}}}}

	// ---- the snippet, statement for statement ----
	// Routing is on by default; force full fan-out to compare.
	full, _ := c.Search(ctx, queries, dimatch.WithRouting(dimatch.RoutingFull))
	routed, _ := c.Search(ctx, queries)
	fmt.Println(routed.Cost.StationsPruned, "stations pruned")
	// ---- end of snippet ----

	if full == nil || routed == nil {
		t.Fatal("searches failed")
	}
	if routed.Cost.StationsPruned != 2 {
		t.Fatalf("StationsPruned = %d, want 2 of 3 stations skipped", routed.Cost.StationsPruned)
	}
	if full.Cost.StationsPruned != 0 {
		t.Fatalf("full fan-out pruned %d stations", full.Cost.StationsPruned)
	}
	// "results are identical to full fan-out"
	w, g := full.PerQuery[1], routed.PerQuery[1]
	if len(w) != 1 || len(g) != 1 || w[0].Person != g[0].Person || w[0].Numerator != g[0].Numerator {
		t.Fatalf("README promises identical results: full %v vs routed %v", w, g)
	}
}

// TestReadmeHierarchySnippet is the README "Hierarchical routing" block,
// statement for statement, plus the section's claims: the search crosses
// two tiers and returns exactly what a flat full fan-out would.
func TestReadmeHierarchySnippet(t *testing.T) {
	// ---- the snippet, statement for statement ----
	ctx := context.Background()

	// Two region coordinators, each a full cluster over its own stations.
	regionA, _ := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{1, 2}, 3)
	regionB, _ := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{3, 4}, 3)
	defer regionA.Shutdown()
	defer regionB.Shutdown()

	// Each region serves its parent over a link, like one big station.
	ln, _ := dimatch.Listen("127.0.0.1:0", nil, nil)
	dialA, _ := dimatch.Dial(ln.Addr(), nil, nil)
	go dimatch.ServeRegion(100, regionA, dialA)
	upA, _ := ln.Accept()
	dialB, _ := dimatch.Dial(ln.Addr(), nil, nil)
	go dimatch.ServeRegion(101, regionB, dialB)
	upB, _ := ln.Accept()

	// The root drives the regions exactly like stations; placement
	// replicates across them, so a whole region can die without losing
	// recall.
	root, _ := dimatch.NewClusterWithLinks(dimatch.Options{},
		map[uint32]dimatch.Link{100: upA, 101: upB}, 3, nil, nil)
	defer root.Shutdown()
	_ = root.Place(ctx, map[dimatch.PersonID]dimatch.Pattern{
		10: {3, 4, 5},
		11: {500, 600, 700},
	}, dimatch.WithReplication(2))

	// The round is delegated over wire v6: each region runs the WBF
	// pipeline on its own stations, the root merges, ranks and verifies
	// the raw partials — results byte-identical to a flat fan-out.
	out, _ := root.Search(ctx, []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}},
	}, dimatch.WithRouting(dimatch.RoutingTree))
	fmt.Println(out.Persons(1), "across", out.Cost.TierHops, "tiers")
	// ---- end of snippet ----

	if out == nil {
		t.Fatal("routed search failed")
	}
	if got := out.Persons(1); len(got) != 1 || got[0] != 10 {
		t.Fatalf("routed search found %v, README promises person 10", got)
	}
	if out.Cost.TierHops != 2 {
		t.Fatalf("TierHops = %d, want 2 (root + one region layer)", out.Cost.TierHops)
	}

	// "results byte-identical to a flat fan-out"
	full, err := root.Search(ctx, []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}},
	}, dimatch.WithRouting(dimatch.RoutingFull))
	if err != nil {
		t.Fatal(err)
	}
	w, g := full.PerQuery[1], out.PerQuery[1]
	if len(w) != len(g) {
		t.Fatalf("README promises identical results: full %v vs routed %v", w, g)
	}
	for i := range w {
		if w[i].Person != g[i].Person || w[i].Numerator != g[i].Numerator || w[i].Denominator != g[i].Denominator {
			t.Fatalf("README promises identical results: full %v vs routed %v", w, g)
		}
	}
}

// TestReadmeAdaptiveSnippet is the README "Adaptive digest parameters"
// block, statement for statement, plus the section's claims: every station
// applies the rollout, searches stamp the new epoch, and routed results
// stay byte-identical to the pre-adaptation answers.
func TestReadmeAdaptiveSnippet(t *testing.T) {
	// ---- the snippet, statement for statement ----
	ctx := context.Background()

	// Four stations, each holding six residents in its own value range.
	data := map[uint32]map[dimatch.PersonID]dimatch.Pattern{}
	for s := uint32(0); s < 4; s++ {
		st := map[dimatch.PersonID]dimatch.Pattern{}
		for j := int64(0); j < 6; j++ {
			base := int64(s)*100 + j
			st[dimatch.PersonID(uint64(s)*10+uint64(j)+1)] = dimatch.Pattern{base + 1, base + 2, base + 3}
		}
		data[s] = st
	}
	c, _ := dimatch.NewCluster(dimatch.Options{}, data)
	defer c.Shutdown()

	// Routed searches feed the traffic profiler as a side effect.
	for i := 0; i < 32; i++ {
		_, _ = c.Search(ctx, []dimatch.Query{
			{ID: 1, Locals: []dimatch.Pattern{{101, 102, 103}}},
			{ID: 2, Locals: []dimatch.Pattern{{40404, 40404, 40404}}},
		})
	}

	// One epoch-atomic rollout; searches stamp the epoch they ran under.
	roll, _ := c.RederiveParams(ctx)
	out, _ := c.Search(ctx, []dimatch.Query{{ID: 1, Locals: []dimatch.Pattern{{101, 102, 103}}}})
	fmt.Println(len(roll.Applied), "stations adaptive at epoch", out.Cost.ParamEpoch)
	// ---- end of snippet ----

	if roll == nil || out == nil {
		t.Fatal("rollout or search failed")
	}
	// "rolled out to every capable station" — all four apply, none degrade.
	if len(roll.Applied) != 4 || len(roll.Static) != 0 || len(roll.Failed) != 0 || len(roll.Skipped) != 0 {
		t.Fatalf("rollout = applied %v static %v failed %v skipped %v, README promises 4 applied",
			roll.Applied, roll.Static, roll.Failed, roll.Skipped)
	}
	if roll.Epoch != 1 || out.Cost.ParamEpoch != 1 {
		t.Fatalf("epoch = rollout %d search %d, README prints epoch 1", roll.Epoch, out.Cost.ParamEpoch)
	}
	// "results stay byte-identical to a never-adapted cluster and recall
	// stays 1": person 11 holds {101,102,103} exactly.
	res := out.PerQuery[1]
	if len(res) != 1 || res[0].Person != 11 || res[0].Score() != 1.0 {
		t.Fatalf("adaptive results %v, README promises person 11 at 1.0", res)
	}
}

// TestReadmePlacementSnippet is the README "Replicated placement" block: an
// empty cluster, Place with WithReplication(2), and the single-station-loss
// guarantee the section claims.
func TestReadmePlacementSnippet(t *testing.T) {
	ctx := context.Background()

	// ---- the snippet, statement for statement ----
	c, _ := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{1, 2, 3, 4}, 3)
	defer c.Shutdown()

	// No station IDs: each pattern lands on the 2 stations that win the
	// rendezvous hash, and membership changes re-replicate automatically.
	err := c.Place(ctx, map[dimatch.PersonID]dimatch.Pattern{
		10: {3, 4, 5},
		11: {3, 4, 5},
	}, dimatch.WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}

	out, _ := c.Search(ctx, []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}},
	})
	// ---- end of snippet ----

	if len(out.PerQuery[1]) != 2 {
		t.Fatalf("healthy search found %d persons, README promises 2", len(out.PerQuery[1]))
	}
	for _, r := range out.PerQuery[1] {
		if r.Score() != 1.0 || r.Stations != 2 {
			t.Fatalf("result %+v, README promises score 1.0 from 2 replicas", r)
		}
	}

	// The section claims any single station can be lost without losing
	// recall: kill each member in turn on a fresh cluster and re-search.
	for _, victim := range []uint32{1, 2, 3, 4} {
		c2, err := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{1, 2, 3, 4}, 3)
		if err != nil {
			t.Fatal(err)
		}
		err = c2.Place(ctx, map[dimatch.PersonID]dimatch.Pattern{
			10: {3, 4, 5},
			11: {3, 4, 5},
		}, dimatch.WithReplication(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := c2.KillStation(victim); err != nil {
			t.Fatal(err)
		}
		out, err := c2.Search(ctx, []dimatch.Query{
			{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(out.PerQuery[1]) != 2 {
			t.Fatalf("killing station %d lost recall: %d persons", victim, len(out.PerQuery[1]))
		}
		_ = c2.Shutdown()
	}
}

// TestReadmeStreamingSnippet is the README "Streaming ingest" block,
// statement for statement, plus the claims the section makes about it:
// every accepted pattern is searchable after Flush, and the pipeline
// accounts for every submission.
func TestReadmeStreamingSnippet(t *testing.T) {
	ctx := context.Background()

	// ---- the snippet, statement for statement ----
	c, _ := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{1, 2, 3, 4}, 3)
	defer c.Shutdown()

	// A pipeline: Submit never assembles maps or names stations — each
	// pattern rides a bounded queue to its 2 rendezvous-placed replicas.
	in, _ := c.Stream(dimatch.StreamOptions{
		Admission: dimatch.StreamBlock, // StreamShed returns ErrOverloaded instead
		TTL:       time.Minute,         // 0 means patterns never expire
	})
	for p := dimatch.PersonID(1); p <= 16; p++ {
		_ = in.Submit(ctx, p, dimatch.Pattern{3, 4, 5})
	}
	_ = in.Flush(ctx) // barrier: every accepted pattern is now searchable

	out, _ := c.Search(ctx, []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}},
	})
	rep := in.Report() // accepted, shed, flushes, per-station queue depths
	_ = in.Close()     // final drain: every acked pattern has landed
	// ---- end of snippet ----

	if len(out.PerQuery[1]) != 16 {
		t.Fatalf("search found %d persons, README promises all 16 streamed", len(out.PerQuery[1]))
	}
	for _, r := range out.PerQuery[1] {
		if r.Score() != 1.0 || r.Stations != 2 {
			t.Fatalf("result %+v, README promises score 1.0 from 2 replicas", r)
		}
	}
	if rep.Accepted != 16 || rep.Shed != 0 || rep.FlushFailures != 0 {
		t.Fatalf("report %+v, README promises 16 accepted, nothing shed or lost", rep)
	}
	if rep.Accepted+rep.Shed+rep.Rejected != rep.Submitted {
		t.Fatalf("accounting does not balance: %+v", rep)
	}
}

// TestReadmeDurableSnippet is the README "Durable stations" block, statement
// for statement, plus the claim the section makes: a cluster restarted over
// the same WAL directories still answers for its placed residents.
func TestReadmeDurableSnippet(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()

	// ---- the snippet, statement for statement ----
	ctx := context.Background()

	// Two durable stations, one WAL directory each: a station appends every
	// acked mutation to its store before the ack leaves.
	s1, _ := dimatch.OpenWALStore(dir1, dimatch.WALOptions{})
	s2, _ := dimatch.OpenWALStore(dir2, dimatch.WALOptions{})
	c, _ := dimatch.NewStoredCluster(dimatch.Options{},
		map[uint32]dimatch.Store{1: s1, 2: s2}, 3)

	// Person 7's global pattern {3,4,5} arrives split across the stations.
	_ = c.Ingest(ctx, 1, map[dimatch.PersonID]dimatch.Pattern{7: {1, 2, 3}})
	_ = c.Ingest(ctx, 2, map[dimatch.PersonID]dimatch.Pattern{7: {2, 2, 2}})
	_ = c.Shutdown() // stations close their stores on the way out

	// A restart is the same constructor over the same directories: residents
	// and the memoized routing digest come back from disk, not over the wire.
	s1, _ = dimatch.OpenWALStore(dir1, dimatch.WALOptions{})
	s2, _ = dimatch.OpenWALStore(dir2, dimatch.WALOptions{})
	c, _ = dimatch.NewStoredCluster(dimatch.Options{},
		map[uint32]dimatch.Store{1: s1, 2: s2}, 3)
	defer c.Shutdown()

	out, _ := c.Search(ctx, []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}}},
	})
	// out.Persons(1) still contains person 7 — recovered from disk.
	// ---- end of snippet ----

	found := false
	for _, p := range out.Persons(1) {
		found = found || p == 7
	}
	if !found {
		t.Fatalf("restarted cluster answered %v, README promises person 7 survives the restart", out.Persons(1))
	}
}
