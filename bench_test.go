// Benchmarks regenerating each table and figure of the paper's evaluation
// (one benchmark per artifact; see DESIGN.md §4 for the experiment index).
// They run reduced workloads by default so `go test -bench=.` completes in
// minutes; cmd/di-bench runs the full-scale versions and prints the
// paper-style tables.
package dimatch

import (
	"context"
	"io"
	"testing"

	"dimatch/internal/bench"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
)

// BenchmarkFigure1a regenerates the periodicity/divisibility curves (E1).
func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.Figure1a(bench.Figure1aConfig{Persons: 120})
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 6 {
			b.Fatal("expected six category curves")
		}
	}
}

// BenchmarkFigure1b regenerates the local-similarity CDF (E2).
func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Figure1b(bench.Figure1bConfig{Persons: 120})
		if err != nil {
			b.Fatal(err)
		}
		if r.FractionAtLeastOne < 0.9 {
			b.Fatalf("P(>=1 similar local) = %v", r.FractionAtLeastOne)
		}
	}
}

// BenchmarkFigure3 regenerates the accumulated representation curves (E3).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Figure3(bench.Figure1aConfig{Persons: 120}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvergence regenerates the sample-count study (E4).
func BenchmarkConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Convergence(context.Background(), bench.ConvergenceConfig{
			Groups:       2,
			SampleCounts: []int{4, 8, 12},
			Persons:      60,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Sweep regenerates the full accuracy/efficiency sweep
// (E5-E8) at a reduced scale.
func BenchmarkFigure4Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, err := bench.Figure4(context.Background(), bench.Figure4Config{
			Persons:       2000,
			Stations:      36,
			PatternCounts: []int{10, 30},
			QueriesScored: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// figure4Cluster builds the Figure-4 style workload once for the
// per-strategy timing benchmarks below (Figure 4b's individual curves).
func figure4Cluster(b *testing.B, persons int) (*Cluster, []Query) {
	b.Helper()
	cfg := DefaultCityConfig()
	cfg.Persons = persons
	cfg.Days = 7
	cfg.Noise = 0
	cfg.VolumeLevels = 17
	cfg.CategoryWeights = []float64{0.04, 0.192, 0.192, 0.192, 0.192, 0.192}
	city, err := GenerateCity(cfg)
	if err != nil {
		b.Fatal(err)
	}
	c, err := NewCluster(Options{
		Params:   Params{Bits: 1 << 15, Hashes: 5, Samples: DefaultSamples, Seed: 1},
		MinScore: 0.999,
	}, StationData(city))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := c.Shutdown(); err != nil {
			b.Error(err)
		}
	})
	var queries []Query
	id := QueryID(1)
	for _, cat := range Categories() {
		for _, p := range city.PersonsInCategory(cat) {
			if cat == OfficeWorker && len(queries) < 20 {
				queries = append(queries, QueryFromPerson(city, id, PersonID(p)))
				id++
			}
		}
	}
	if len(queries) == 0 {
		b.Fatal("no queries")
	}
	return c, queries
}

// BenchmarkSearchNaive times the naive strategy end to end (Figure 4b).
func BenchmarkSearchNaive(b *testing.B) {
	c, queries := figure4Cluster(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(context.Background(), queries, WithStrategy(StrategyNaive)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchBF times the Bloom-filter baseline end to end (Figure 4b).
func BenchmarkSearchBF(b *testing.B) {
	c, queries := figure4Cluster(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(context.Background(), queries, WithStrategy(StrategyBF)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchWBF times full DI-matching end to end (Figure 4b).
func BenchmarkSearchWBF(b *testing.B) {
	c, queries := figure4Cluster(b, 3000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Search(context.Background(), queries, WithStrategy(StrategyWBF)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableII regenerates the effectiveness table (E9) at reduced
// scale.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.TableII(context.Background(), bench.TableIIConfig{Persons: 120, Days: 2, QueriesPerDay: 6})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatal("expected two rows")
		}
	}
}

// BenchmarkEncoderAddQuery isolates Algorithm 1 (query encoding).
func BenchmarkEncoderAddQuery(b *testing.B) {
	locals := []Pattern{
		{0, 2, 4, 10, 0, 2, 4, 9},
		{0, 0, 3, 2, 0, 0, 3, 2},
		{0, 11, 16, 0, 0, 10, 15, 0},
	}
	params := core.Params{Bits: 1 << 20, Hashes: 5, Samples: 8, Epsilon: 1, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := core.NewEncoder(params, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := enc.AddQuery(core.Query{ID: 1, Locals: locals}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatcherMatch isolates Algorithm 2 (station-side probing).
func BenchmarkMatcherMatch(b *testing.B) {
	locals := []Pattern{
		{0, 2, 4, 10, 0, 2, 4, 9},
		{0, 0, 3, 2, 0, 0, 3, 2},
		{0, 11, 16, 0, 0, 10, 15, 0},
	}
	params := core.Params{Bits: 1 << 20, Hashes: 5, Samples: 8, Epsilon: 1, Seed: 1}
	enc, err := core.NewEncoder(params, 8)
	if err != nil {
		b.Fatal(err)
	}
	if err := enc.AddQuery(core.Query{ID: 1, Locals: locals}); err != nil {
		b.Fatal(err)
	}
	m := core.NewMatcher(enc.Filter())
	candidate := Pattern{0, 13, 23, 12, 0, 12, 22, 11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Match(candidate); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRenderers exercises the text renderers (cheap, but keeps them
// covered under -bench runs too).
func BenchmarkRenderers(b *testing.B) {
	points, err := bench.Figure4(context.Background(), bench.Figure4Config{
		Persons:       1000,
		Stations:      25,
		PatternCounts: []int{5},
		QueriesScored: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.RenderFigure4(io.Discard, points)
	}
}

var _ = cluster.StrategyWBF // keep the cluster import tied to strategy re-exports
