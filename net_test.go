package dimatch

import (
	"context"
	"sync"
	"testing"
)

// TestTCPClusterEndToEnd runs a real networked deployment on localhost: a
// data center listening on TCP, three base station goroutines dialing in,
// and a WBF search across them.
func TestTCPClusterEndToEnd(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 60
	cfg.Stations = 16
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := StationData(city)

	// A link's meter records that end's sends: accepted (center-side) links
	// carry dissemination, dialed (station-side) links carry reports.
	var downMeter, upMeter Meter
	ln, err := Listen("127.0.0.1:0", &downMeter, &upMeter)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Stations dial in and serve; their IDs travel out of band (the demo
	// convention: dial order == sorted station order).
	ids := make([]uint32, 0, len(data))
	for id := range data {
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	accepted := make(map[uint32]Link, len(ids))
	var acceptErr error
	var acceptWg sync.WaitGroup
	acceptWg.Add(1)
	go func() {
		defer acceptWg.Done()
		for range ids {
			link, err := ln.Accept()
			if err != nil {
				acceptErr = err
				return
			}
			// First frame identifies the station (its reports carry the ID;
			// for the demo we match by dial order).
			accepted[uint32(len(accepted))] = link
		}
	}()

	sorted := append([]uint32(nil), ids...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for _, id := range sorted {
		id := id
		link, err := Dial(ln.Addr(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := ServeStation(id, data[id], link); err != nil {
				t.Errorf("station %d: %v", id, err)
			}
		}()
	}
	acceptWg.Wait()
	if acceptErr != nil {
		t.Fatal(acceptErr)
	}

	// The accept loop assigned sequential keys in accept order; remap to
	// real station ids by dial order (deterministic here because dials are
	// sequential).
	links := make(map[uint32]Link, len(accepted))
	for i, id := range sorted {
		links[id] = accepted[uint32(i)]
	}

	c, err := NewClusterWithLinks(Options{
		Params:   Params{Samples: 8, Epsilon: 1, Seed: 42, PositionSalted: true},
		MinScore: 0.9,
	}, links, city.Length(), &downMeter, &upMeter)
	if err != nil {
		t.Fatal(err)
	}

	query := QueryFromPerson(city, 1, 0)
	out, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Persons(1)) == 0 {
		t.Fatal("TCP search returned nothing")
	}
	found := false
	for _, p := range out.Persons(1) {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("reference person missing from their own query's results")
	}
	if out.Cost.BytesUp == 0 {
		t.Fatal("uplink traffic not metered over TCP")
	}

	// A link-backed cluster now reports station storage too, sourced from
	// the stations' own stats replies over the wire.
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.StationsFailed != 0 || st.TotalStorageBytes() == 0 {
		t.Fatalf("stats over TCP: failed=%d bytes=%d", st.StationsFailed, st.TotalStorageBytes())
	}
	if out.Cost.StationRawBytes != st.TotalStorageBytes() {
		t.Fatalf("StationRawBytes %d != stats total %d", out.Cost.StationRawBytes, st.TotalStorageBytes())
	}

	// The cluster grows over live TCP: a brand-new person's first half is
	// ingested into an existing station while a new station dials in with
	// the second half and joins via AddStationLink.
	length := city.Length()
	h1, h2 := make(Pattern, length), make(Pattern, length)
	for i := 0; i < length; i++ {
		v := int64(i%3 + 1)
		h1[i] = v / 2
		h2[i] = v - v/2
	}
	const newPerson PersonID = 999999
	if err := c.Ingest(context.Background(), sorted[0], map[PersonID]Pattern{newPerson: h1}); err != nil {
		t.Fatal(err)
	}
	newLink, err := Dial(ln.Addr(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := ServeStation(1000, map[PersonID]Pattern{newPerson: h2}, newLink); err != nil {
			t.Errorf("joined station: %v", err)
		}
	}()
	centerEnd, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddStationLink(context.Background(), 1000, centerEnd); err != nil {
		t.Fatal(err)
	}

	grown, err := c.Search(context.Background(), []Query{{ID: 9, Locals: []Pattern{h1, h2}}},
		WithStrategy(StrategyWBF), WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, p := range grown.Persons(9) {
		if p == newPerson {
			found = true
		}
	}
	if !found {
		t.Fatalf("person spanning ingest + joined TCP station not retrieved: %v", grown.Persons(9))
	}

	if err := c.Shutdown(); err != nil {
		t.Fatal(err)
	}
	wg.Wait() // stations exit on shutdown message
}
