package dimatch

import (
	"context"

	"dimatch/internal/cluster"
	"dimatch/internal/store"
	"dimatch/internal/store/wal"
)

// Station-persistence vocabulary: the pluggable store a base station makes
// its resident set durable through. A station appends every applied
// ingest/evict batch to its Store before acknowledging it, so an acked
// mutation is exactly as durable as the backend promises — not at all for
// the in-memory default, fsync-bounded for the snapshot+WAL backend.
type (
	// Store is the station persistence contract (append / snapshot /
	// recover / compact / close). Implementations are single-owner: the
	// station serve loop is the only caller after construction.
	Store = store.Store
	// WALOptions tunes the snapshot+WAL backend: fsync cadence (SyncEvery
	// batches or SyncInterval time) and compaction thresholds
	// (SnapshotEvery records or SnapshotBytes log bytes). The zero value
	// means fsync-per-batch with default compaction thresholds.
	WALOptions = wal.Options
)

// NewMemoryStore returns the in-memory store backend: zero durability, zero
// cost. A station over it behaves exactly like a pre-persistence station.
func NewMemoryStore() Store { return store.NewMemory() }

// OpenWALStore opens (or creates) a snapshot+WAL station store rooted at
// dir. Reopening a directory a previous station wrote — even one whose
// process was killed mid-append — recovers every acknowledged batch; a torn
// tail from the crash is truncated away.
func OpenWALStore(dir string, opts WALOptions) (Store, error) { return wal.Open(dir, opts) }

// NewStoredCluster builds an in-process cluster of durable stations, one per
// store. Each station recovers its residents (and memoized routing digest)
// from its backend before joining, so booting over non-empty stores is a
// restart, not a cold start.
func NewStoredCluster(opts Options, stations map[uint32]Store, patternLength int) (*Cluster, error) {
	inner, err := cluster.NewStored(opts, stations, patternLength)
	if err != nil {
		return nil, err
	}
	inner.Start()
	return &Cluster{inner: inner}, nil
}

// AddStoredStation grows a running cluster with an in-process durable
// station — the rejoin path of a restarted station: recover from the store,
// join, and let the heal pass re-replicate only the delta the station missed
// while down. Seed locals (optional, usually nil on a rejoin) are persisted
// through the store like any ingest.
func (c *Cluster) AddStoredStation(ctx context.Context, id uint32, locals map[PersonID]Pattern, st Store) error {
	return c.inner.AddStoredStation(ctx, id, locals, st)
}

// ServeStoredStation runs a durable base station over an established link
// until the center sends a shutdown or the link closes — the body of a
// remote station process started with di-cluster -role station -store wal.
// The station owns the store and closes it when the loop exits.
func ServeStoredStation(id uint32, locals map[PersonID]Pattern, link Link, st Store) error {
	return cluster.ServeStoredStation(id, locals, link, st)
}
