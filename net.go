package dimatch

import (
	"context"

	"dimatch/internal/cluster"
	"dimatch/internal/transport"
)

// Networked-deployment vocabulary: the same data center logic can drive
// base stations over real TCP connections instead of in-process pipes.
type (
	// Link is one end of an ordered message pipe between the data center
	// and a base station.
	Link = transport.Link
	// Meter counts traffic crossing a set of links.
	Meter = transport.Meter
	// Listener accepts station connections on the data center side.
	Listener = transport.Listener
)

// Listen starts a TCP listener for incoming station links (e.g.
// "127.0.0.1:0"). Accepted links record their sends (dissemination) on
// sendMeter and their receives (station reports) on recvMeter; either may
// be nil.
func Listen(addr string, sendMeter, recvMeter *Meter) (*Listener, error) {
	return transport.Listen(addr, sendMeter, recvMeter)
}

// Dial connects a base station to the data center, metering this end's
// sends and receives (either meter may be nil).
func Dial(addr string, sendMeter, recvMeter *Meter) (Link, error) {
	return transport.Dial(addr, sendMeter, recvMeter)
}

// NewClusterWithLinks builds a data center over externally established
// links (one per remote station) sharing the given pattern length. The
// meters, if non-nil, should be the ones the links record into so they
// reflect aggregate link traffic (per-search CostReports are tallied
// independently). The cluster takes ownership of the links — each is
// wrapped in a request mux so concurrent searches can share it — and the
// caller must not use them afterwards.
func NewClusterWithLinks(opts Options, links map[uint32]Link, patternLength int, downMeter, upMeter *Meter) (*Cluster, error) {
	inner, err := cluster.NewWithLinks(opts, links, patternLength, downMeter, upMeter)
	if err != nil {
		return nil, err
	}
	inner.Start()
	return &Cluster{inner: inner}, nil
}

// AddStationLink grows a running cluster with a remote station reachable
// over an established link (e.g. an accepted TCP connection). The cluster
// takes ownership of the link immediately — it is wrapped in a request mux
// and closed if the join fails. Joining performs a stats handshake: the
// station must answer, and if it already holds patterns their length must
// match the cluster's (ErrLengthMismatch otherwise).
func (c *Cluster) AddStationLink(ctx context.Context, id uint32, link Link) error {
	return c.inner.AddStationLink(ctx, id, link)
}

// ServeStation runs a base station loop over an established link until the
// center sends a shutdown or the link closes — the body of a remote station
// process.
func ServeStation(id uint32, locals map[PersonID]Pattern, link Link) error {
	return cluster.ServeStation(id, locals, link)
}

// ServeRegion runs a region coordinator over an established link until the
// parent sends a shutdown or the link closes — the body of one middle tier
// in a hierarchical deployment. The region fronts a whole running cluster:
// to its parent it is one station-shaped peer that aggregates stats, serves
// its subtree's union routing digest, forwards classic station frames to its
// members, and — for parents that delegate (it advertises the capability in
// its stats reply) — answers whole search rounds with raw partial sums the
// parent merges, ranks and verifies. Results through any number of tiers are
// identical to a flat fan-out over the same stations (docs/ROUTING.md).
//
// The caller keeps ownership of the sub-cluster: ServeRegion returning does
// not shut it down.
func ServeRegion(id uint32, sub *Cluster, link Link) error {
	return cluster.ServeRegion(id, sub.inner, link)
}
