package dimatch_test

import (
	"context"
	"fmt"
	"log"

	"dimatch"
)

// exampleData is a two-station toy city: person 10's global pattern
// {3,4,5} is split across the stations, person 11 holds it whole.
func exampleData() map[uint32]map[dimatch.PersonID]dimatch.Pattern {
	return map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {10: {2, 2, 2}, 11: {3, 4, 5}},
	}
}

// ExampleCluster_Search runs one WBF search: the query carries person 10's
// two local pieces, and both the split person (10) and the person holding
// the identical global pattern outright (11) score a complete partition.
func ExampleCluster_Search() {
	c, err := dimatch.NewCluster(dimatch.Options{}, exampleData())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	q := dimatch.Query{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}}}
	out, err := c.Search(context.Background(), []dimatch.Query{q})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.PerQuery[1] {
		fmt.Printf("person %d scores %.1f across %d stations\n", r.Person, r.Score(), r.Stations)
	}
	// Output:
	// person 10 scores 1.0 across 2 stations
	// person 11 scores 1.0 across 1 stations
}

// ExampleCluster_Search_options overrides the cluster defaults for one
// call: keep only the best answer, verify it exactly against fetched
// patterns, and run the legacy unbatched pipeline for comparison.
func ExampleCluster_Search_options() {
	c, err := dimatch.NewCluster(dimatch.Options{}, exampleData())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	q := dimatch.Query{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}}}
	out, err := c.Search(context.Background(), []dimatch.Query{q},
		dimatch.WithTopK(1),
		dimatch.WithVerify(true),
		dimatch.WithBatching(1), // legacy per-query frames; results identical
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.PerQuery[1] {
		fmt.Printf("person %d verified at %.1f\n", r.Person, r.Score())
	}
	fmt.Printf("batched rounds used: %d\n", out.Cost.Batches)
	// Output:
	// person 10 verified at 1.0
	// batched rounds used: 0
}

// ExampleCluster_Search_routing shows summary routing pruning fan-out: the
// stores are well separated, so a single-target search visits only the one
// station that can answer. Routing is the default — the option is spelled
// out here only to contrast the two modes.
func ExampleCluster_Search_routing() {
	data := map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {20: {50, 60, 70}},
		2: {30: {500, 600, 700}},
	}
	c, err := dimatch.NewCluster(dimatch.Options{}, data)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	q := dimatch.Query{ID: 1, Locals: []dimatch.Pattern{{50, 60, 70}}}
	out, err := c.Search(ctx, []dimatch.Query{q}) // summary-routed by default
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.PerQuery[1] {
		fmt.Printf("person %d scores %.1f\n", r.Person, r.Score())
	}
	fmt.Printf("stations pruned: %d of %d\n", out.Cost.StationsPruned, c.Stations())
	// Output:
	// person 20 scores 1.0
	// stations pruned: 2 of 3
}

// ExampleWithRouting contrasts the two routing modes on one cluster: full
// fan-out visits every station, summary routing skips the ones whose cached
// summary admits no possible match — with identical results.
func ExampleWithRouting() {
	data := map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {10: {1, 2, 3}},
		1: {20: {50, 60, 70}},
		2: {30: {500, 600, 700}},
	}
	c, err := dimatch.NewCluster(dimatch.Options{}, data)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()
	q := dimatch.Query{ID: 1, Locals: []dimatch.Pattern{{1, 2, 3}}}

	full, err := c.Search(ctx, []dimatch.Query{q}, dimatch.WithRouting(dimatch.RoutingFull))
	if err != nil {
		log.Fatal(err)
	}
	routed, err := c.Search(ctx, []dimatch.Query{q}) // dimatch.RoutingSummary
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full: %d query frames, %d pruned\n", full.Cost.MessagesDown, full.Cost.StationsPruned)
	fmt.Printf("routed: %d query frames, %d pruned\n", routed.Cost.MessagesDown, routed.Cost.StationsPruned)
	fmt.Println("same answer:", len(full.PerQuery[1]) == len(routed.PerQuery[1]))
	// Output:
	// full: 3 query frames, 0 pruned
	// routed: 1 query frames, 2 pruned
	// same answer: true
}

// ExampleCluster_Search_hierarchical delegates a search through region
// coordinators: each region is a full cluster over its own stations,
// served to the root like one big station (ServeRegion, wire v6). The
// root merges the regions' raw partials and ranks globally, so results
// are identical to a flat fan-out — docs/ROUTING.md carries the design.
func ExampleCluster_Search_hierarchical() {
	ctx := context.Background()

	regionA, err := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{1, 2}, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer regionA.Shutdown()
	regionB, err := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{3, 4}, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer regionB.Shutdown()

	ln, err := dimatch.Listen("127.0.0.1:0", nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	dialA, _ := dimatch.Dial(ln.Addr(), nil, nil)
	go dimatch.ServeRegion(100, regionA, dialA)
	upA, _ := ln.Accept()
	dialB, _ := dimatch.Dial(ln.Addr(), nil, nil)
	go dimatch.ServeRegion(101, regionB, dialB)
	upB, _ := ln.Accept()

	root, err := dimatch.NewClusterWithLinks(dimatch.Options{},
		map[uint32]dimatch.Link{100: upA, 101: upB}, 3, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer root.Shutdown()

	// R=2 over two regions: each person has a copy in both subtrees.
	err = root.Place(ctx, map[dimatch.PersonID]dimatch.Pattern{
		10: {3, 4, 5},
		11: {500, 600, 700},
	}, dimatch.WithReplication(2))
	if err != nil {
		log.Fatal(err)
	}

	out, err := root.Search(ctx, []dimatch.Query{
		{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}},
	}, dimatch.WithRouting(dimatch.RoutingTree))
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range out.PerQuery[1] {
		fmt.Printf("person %d scores %.1f\n", r.Person, r.Score())
	}
	fmt.Printf("tiers crossed: %d\n", out.Cost.TierHops)
	// Output:
	// person 10 scores 1.0
	// tiers crossed: 2
}

// ExampleCluster_Ingest mutates a running cluster: freshly observed call
// data lands at the station that saw it, and an eviction removes it again
// — all while searches may be in flight.
func ExampleCluster_Ingest() {
	c, err := dimatch.NewCluster(dimatch.Options{}, exampleData())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	err = c.Ingest(ctx, 0, map[dimatch.PersonID]dimatch.Pattern{
		4711: {0, 3, 1}, // person 4711's new local pattern at station 0
	})
	if err != nil {
		log.Fatal(err)
	}
	st, _ := c.Stats(ctx)
	fmt.Println("residents after ingest:", st.TotalResidents())

	if err := c.Evict(ctx, 0, []dimatch.PersonID{4711}); err != nil {
		log.Fatal(err)
	}
	st, _ = c.Stats(ctx)
	fmt.Println("residents after evict:", st.TotalResidents())
	// Output:
	// residents after ingest: 4
	// residents after evict: 3
}

// ExampleCluster_Stats fetches the per-station storage snapshot the
// stations report about themselves over the wire (cached per membership
// epoch).
func ExampleCluster_Stats() {
	c, err := dimatch.NewCluster(dimatch.Options{}, exampleData())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()

	st, err := c.Stats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range st.Stations {
		fmt.Printf("station %d: %d residents, %d B raw patterns\n",
			s.Station, s.Residents, s.StorageBytes)
	}
	fmt.Printf("total: %d residents, %d B\n", st.TotalResidents(), st.TotalStorageBytes())
	// Output:
	// station 0: 1 residents, 24 B raw patterns
	// station 1: 2 residents, 48 B raw patterns
	// total: 3 residents, 72 B
}

// ExampleCluster_Place runs a placement-first deployment: an empty cluster,
// patterns placed onto rendezvous-hashed replicas, and a search that
// survives losing any single station.
func ExampleCluster_Place() {
	c, err := dimatch.NewEmptyCluster(dimatch.Options{}, []uint32{1, 2, 3, 4}, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown()
	ctx := context.Background()

	// Each pattern lands on 2 stations chosen by HRW hashing; no station
	// IDs in sight.
	err = c.Place(ctx, map[dimatch.PersonID]dimatch.Pattern{
		10: {3, 4, 5},
		11: {3, 4, 5},
	}, dimatch.WithReplication(2))
	if err != nil {
		log.Fatal(err)
	}
	st, _ := c.Stats(ctx)
	fmt.Printf("placed %d persons as %d replicas\n", c.Placed(), st.TotalResidents())

	// Replicas dedupe: each person appears once, at the best replica's
	// score, reported by both copies.
	q := dimatch.Query{ID: 1, Locals: []dimatch.Pattern{{3, 4, 5}}}
	out, err := c.Search(ctx, []dimatch.Query{q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("healthy results:", len(out.PerQuery[1]))

	// Any single station can die: the kill re-replicates its patterns from
	// the surviving copies, so recall holds.
	if err := c.KillStation(1); err != nil {
		log.Fatal(err)
	}
	out, err = c.Search(ctx, []dimatch.Query{q})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after losing a station:", len(out.PerQuery[1]))
	// Output:
	// placed 2 persons as 4 replicas
	// healthy results: 2
	// after losing a station: 2
}
