package dimatch

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// TestLiveClusterLifecyclePublicAPI drives the lifecycle surface end to end
// through the public package: ingest a brand-new person, grow the cluster
// with a station holding the second half of their pattern, find them with a
// verified WBF search, inspect Stats, then evict and shrink back — all on
// one running cluster, with searches interleaved throughout. Run under
// -race in CI.
func TestLiveClusterLifecyclePublicAPI(t *testing.T) {
	data := map[uint32]map[PersonID]Pattern{
		0: {10: {1, 2, 3}, 13: {7, 1, 9}},
		1: {10: {2, 2, 2}, 11: {3, 4, 5}},
	}
	c, err := NewCluster(Options{Params: Params{Bits: 1 << 14, Hashes: 4, Samples: 3, Seed: 7}}, data)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown() //nolint:errcheck // test teardown
	ctx := context.Background()

	// Person 20 does not exist yet: their first piece is ingested into
	// station 0, their second arrives with a brand-new station 2.
	target := Query{ID: 5, Locals: []Pattern{{5, 0, 1}, {1, 4, 2}}}
	if out, err := c.Search(ctx, []Query{target}); err != nil {
		t.Fatal(err)
	} else {
		for _, p := range out.Persons(5) {
			if p == 20 {
				t.Fatal("person 20 retrieved before ingestion")
			}
		}
	}

	// Keep searches in flight while the membership changes underneath.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		q := Query{ID: 1, Locals: []Pattern{{1, 2, 3}, {2, 2, 2}}}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Search(ctx, []Query{q}); err != nil {
				t.Errorf("concurrent search during churn: %v", err)
				return
			}
		}
	}()

	if err := c.Ingest(ctx, 0, map[PersonID]Pattern{20: {5, 0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddStation(ctx, 2, map[PersonID]Pattern{20: {1, 4, 2}}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if got := c.Stations(); got != 3 {
		t.Fatalf("Stations() = %d after AddStation, want 3", got)
	}
	out, err := c.Search(ctx, []Query{target}, WithVerify(true))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out.PerQuery[5] {
		if r.Person == 20 {
			found = true
			if r.Score() != 1.0 {
				t.Fatalf("spanning target score = %v, want 1", r.Score())
			}
		}
	}
	if !found {
		t.Fatalf("person 20 (ingested + new station) not retrieved: %v", out.Persons(5))
	}
	if out.Cost.StationRawBytes == 0 {
		t.Fatal("StationRawBytes not sourced from station stats")
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalResidents() != 6 {
		t.Fatalf("TotalResidents = %d, want 6", st.TotalResidents())
	}
	if st.TotalStorageBytes() != out.Cost.StationRawBytes {
		t.Fatalf("Stats storage %d != search's StationRawBytes %d", st.TotalStorageBytes(), out.Cost.StationRawBytes)
	}

	// Shrink back: evict the ingested piece and remove the new station.
	if err := c.Evict(ctx, 0, []PersonID{20}); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveStation(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := c.Stations(); got != 2 {
		t.Fatalf("Stations() = %d after RemoveStation, want 2", got)
	}
	out, err = c.Search(ctx, []Query{target})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Persons(5) {
		if p == 20 {
			t.Fatal("person 20 retrieved after eviction and station removal")
		}
	}

	// Sentinels surface through the public package.
	if err := c.Ingest(ctx, 42, map[PersonID]Pattern{1: {1, 2, 3}}); !errors.Is(err, ErrUnknownStation) {
		t.Fatalf("err = %v, want ErrUnknownStation", err)
	}
	if err := c.AddStation(ctx, 0, nil); !errors.Is(err, ErrStationExists) {
		t.Fatalf("err = %v, want ErrStationExists", err)
	}
	if err := c.AddStation(ctx, 9, map[PersonID]Pattern{1: {1}}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("err = %v, want ErrLengthMismatch", err)
	}
}
