package dimatch

import (
	"context"
	"testing"
)

// TestQuickstartFlow exercises the documented public-API path end to end:
// generate a city, stand up a cluster, search for customers similar to a
// reference person, score against ground truth.
func TestQuickstartFlow(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 90
	cfg.Stations = 36
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster(Options{
		// Position salting keeps ε bands per-slot (without it, the union of
		// scaled bands over a monotone accumulated series swallows every
		// small pattern — see DESIGN.md D1); the paper's unsalted scheme is
		// exercised at ε = 0 elsewhere.
		Params: Params{Samples: 8, Epsilon: 1, Seed: 42, PositionSalted: true},
		// A complete match partitions the query's locals and scores exactly
		// 1; the threshold keeps incidental partial matches out, playing
		// the role of the paper's top-K cut.
		MinScore: 0.9,
	}, StationData(city))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := c.Shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const ref = PersonID(0)
	query := QueryFromPerson(city, 1, ref)
	out, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}

	retrieved := out.Persons(1)
	if len(retrieved) == 0 {
		t.Fatal("search returned nothing")
	}
	relevant := RelevantSet(city, ref)
	// Exclude the reference person, who is trivially their own match.
	var others []PersonID
	for _, p := range retrieved {
		if p != ref {
			others = append(others, p)
		}
	}
	score := Evaluate(others, relevant)
	if score.Precision() < 0.9 {
		t.Fatalf("precision %.2f below 0.9: %+v", score.Precision(), score)
	}
	if score.Recall() < 0.9 {
		t.Fatalf("recall %.2f below 0.9: %+v", score.Recall(), score)
	}
}

func TestStrategiesAgreeOnTruePositives(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 60
	cfg.Stations = 25
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := StationData(city)
	c, err := NewCluster(Options{Params: Params{Samples: 8, Epsilon: 4, Seed: 7, PositionSalted: true}}, data)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	query := QueryFromPerson(city, 1, 3)
	oracle, err := Oracle(data, query, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyNaive))
	if err != nil {
		t.Fatal(err)
	}
	got := naive.Persons(1)
	if len(got) != len(oracle) {
		t.Fatalf("naive %v != oracle %v", got, oracle)
	}
	for i := range got {
		if got[i] != oracle[i] {
			t.Fatalf("naive %v != oracle %v", got, oracle)
		}
	}

	// WBF must find every oracle answer (no false negatives under scaled
	// tolerance) as long as the answer's pieces align with the query split —
	// which the generator guarantees for same-category persons.
	wbf, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyWBF))
	if err != nil {
		t.Fatal(err)
	}
	wbfSet := make(map[PersonID]bool)
	for _, p := range wbf.Persons(1) {
		wbfSet[p] = true
	}
	missed := 0
	for _, p := range oracle {
		if !wbfSet[p] {
			missed++
		}
	}
	if missed > len(oracle)/10 {
		t.Fatalf("WBF missed %d of %d oracle answers", missed, len(oracle))
	}
}

func TestCostOrderingOnCity(t *testing.T) {
	// The headline efficiency claims on a realistic workload: WBF moves far
	// fewer bytes upstream than naive, and — the scaling behind Figure 4d —
	// naive center storage grows with the population while WBF's tracks the
	// query set, not the data.
	searchCosts := func(persons int) (naive, wbf CostReport) {
		cfg := DefaultCityConfig()
		cfg.Persons = persons
		city, err := GenerateCity(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCluster(Options{
			Params:   Params{Samples: 8, Epsilon: 1, Seed: 7, PositionSalted: true},
			MinScore: 0.9,
		}, StationData(city))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		query := QueryFromPerson(city, 1, 0)
		n, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyNaive))
		if err != nil {
			t.Fatal(err)
		}
		w, err := c.Search(context.Background(), []Query{query}, WithStrategy(StrategyWBF))
		if err != nil {
			t.Fatal(err)
		}
		return n.Cost, w.Cost
	}

	naiveSmall, wbfSmall := searchCosts(60)
	naiveBig, wbfBig := searchCosts(240)

	if wbfBig.BytesUp*3 > naiveBig.BytesUp {
		t.Fatalf("WBF uplink %d not well below naive uplink %d", wbfBig.BytesUp, naiveBig.BytesUp)
	}
	// Naive center storage scales with the population; WBF's is dominated
	// by the filter and barely moves.
	if naiveBig.CenterStorageBytes < naiveSmall.CenterStorageBytes*3 {
		t.Fatalf("naive storage did not scale with data: %d -> %d", naiveSmall.CenterStorageBytes, naiveBig.CenterStorageBytes)
	}
	if wbfBig.CenterStorageBytes > wbfSmall.CenterStorageBytes*3/2 {
		t.Fatalf("WBF storage scaled with data: %d -> %d", wbfSmall.CenterStorageBytes, wbfBig.CenterStorageBytes)
	}
}

func TestPublicHelpers(t *testing.T) {
	if !Similar(Pattern{1, 2}, Pattern{2, 3}, 1) {
		t.Fatal("Similar within eps failed")
	}
	if Similar(Pattern{1, 2}, Pattern{3, 2}, 1) {
		t.Fatal("Similar beyond eps passed")
	}
	acc := Accumulate(Pattern{1, 2, 3})
	if !acc.Equal(Pattern{1, 3, 6}) {
		t.Fatalf("Accumulate = %v", acc)
	}
	if len(Categories()) != 6 {
		t.Fatal("six categories expected")
	}
	if DefaultSamples != 12 {
		t.Fatal("paper's b is 12")
	}
}

func TestRecordPathThroughPublicAPI(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 30
	cfg.Stations = 16
	rs, err := GenerateCityRecords(cfg)
	if err != nil {
		t.Fatal(err)
	}
	city, err := ExtractCity(rs)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range city.Persons {
		if !city.GlobalOf(p.ID).Equal(fast.GlobalOf(p.ID)) {
			t.Fatalf("record and fast paths disagree for person %d", p.ID)
		}
	}
}

func TestRelevantSetExcludesSelfAndUnknown(t *testing.T) {
	cfg := DefaultCityConfig()
	cfg.Persons = 30
	city, err := GenerateCity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel := RelevantSet(city, 0)
	for _, p := range rel {
		if p == 0 {
			t.Fatal("relevant set contains the reference person")
		}
	}
	if RelevantSet(city, PersonID(9999)) != nil {
		t.Fatal("unknown person should have nil relevant set")
	}
}
