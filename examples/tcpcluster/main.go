// Tcpcluster: a genuinely distributed deployment on localhost. The data
// center listens on a TCP socket; four base stations dial in from their own
// goroutines (in production they would be separate processes — see
// cmd/di-cluster for that variant); a WBF search runs over real sockets
// with the same byte accounting as the in-process simulation.
//
// Run with: go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"dimatch"
)

func main() {
	cfg := dimatch.DefaultCityConfig()
	cfg.Persons = 120
	cfg.Stations = 16
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		log.Fatal(err)
	}
	data := dimatch.StationData(city)

	// Center side: sends are dissemination, receives are station reports.
	var down, up dimatch.Meter
	ln, err := dimatch.Listen("127.0.0.1:0", &down, &up)
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	fmt.Printf("data center listening on %s\n", ln.Addr())

	ids := make([]uint32, 0, len(data))
	for id := range data {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	// Stations dial in sequentially so accept order matches station order.
	links := make(map[uint32]dimatch.Link, len(ids))
	var stations sync.WaitGroup
	for _, id := range ids {
		id := id
		stationLink, err := dimatch.Dial(ln.Addr(), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		centerLink, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		links[id] = centerLink
		stations.Add(1)
		go func() {
			defer stations.Done()
			if err := dimatch.ServeStation(id, data[id], stationLink); err != nil {
				log.Printf("station %d: %v", id, err)
			}
		}()
	}
	fmt.Printf("%d base stations connected over TCP\n\n", len(links))

	c, err := dimatch.NewClusterWithLinks(dimatch.Options{
		Params:   dimatch.Params{Samples: 8, Epsilon: 1, Seed: 42, PositionSalted: true},
		MinScore: 0.9,
		TopK:     10,
	}, links, city.Length(), &down, &up)
	if err != nil {
		log.Fatal(err)
	}

	// A real deployment bounds every search: if stations stall, the context
	// deadline abandons the round without poisoning the links.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const ref = dimatch.PersonID(3)
	out, err := c.Search(ctx, []dimatch.Query{dimatch.QueryFromPerson(city, 1, ref)},
		dimatch.WithStrategy(dimatch.StrategyWBF))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top matches for person %d:\n", ref)
	for _, r := range out.PerQuery[1] {
		fmt.Printf("  person %-4d weight %.3f (%d stations)\n", r.Person, r.Score(), r.Stations)
	}
	fmt.Printf("\nover the wire: %d B disseminated, %d B of reports, elapsed %v\n",
		out.Cost.BytesDown, out.Cost.BytesUp, out.Cost.Elapsed)

	if err := c.Shutdown(); err != nil {
		log.Fatal(err)
	}
	stations.Wait()
	fmt.Println("all stations shut down cleanly")
}
