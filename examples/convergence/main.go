// Convergence: the paper's parameter study of b, the number of sampled
// points per pattern (Section V-B). More samples mean more constraints per
// candidate and fewer false positives — up to the point where accuracy
// stabilizes. The paper observes convergence around b = 5 and stability at
// b = 12, its chosen default.
//
// Run with: go run ./examples/convergence
package main

import (
	"context"
	"fmt"
	"log"

	"dimatch"
)

func main() {
	// Four days of data so the b sweep has room above the paper's stable
	// point of 12.
	cfg := dimatch.DefaultCityConfig()
	cfg.Persons = 120
	cfg.Days = 4
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		log.Fatal(err)
	}
	data := dimatch.StationData(city)

	// One clean reference person per category.
	var refs []dimatch.PersonID
	for _, cat := range dimatch.Categories() {
		if ref, ok := dimatch.CleanReference(city, cat); ok {
			refs = append(refs, ref)
		}
	}

	fmt.Println("accuracy (F1 against category ground truth) vs sample count b:")
	fmt.Printf("%6s %10s\n", "b", "F1")
	for _, b := range []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16} {
		c, err := dimatch.NewCluster(dimatch.Options{
			Params: dimatch.Params{
				Samples:        b,
				Epsilon:        1,
				Seed:           1,
				PositionSalted: true,
			},
			MinScore: 0.9,
		}, data)
		if err != nil {
			log.Fatal(err)
		}

		queries := make([]dimatch.Query, len(refs))
		for i, ref := range refs {
			queries[i] = dimatch.QueryFromPerson(city, dimatch.QueryID(i+1), ref)
		}
		out, err := c.Search(context.Background(), queries, dimatch.WithStrategy(dimatch.StrategyWBF))
		if err != nil {
			log.Fatal(err)
		}

		var total dimatch.Confusion
		for i, ref := range refs {
			var retrieved []dimatch.PersonID
			for _, p := range out.Persons(dimatch.QueryID(i + 1)) {
				if p != ref {
					retrieved = append(retrieved, p)
				}
			}
			total.Add(dimatch.Evaluate(retrieved, dimatch.RelevantSet(city, ref)))
		}
		fmt.Printf("%6d %10.3f\n", b, total.F1())

		if err := c.Shutdown(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\n(the paper converges by b=5 and stabilizes by b=12, its default)")
}
