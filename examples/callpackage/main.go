// Callpackage: the paper's motivating scenario (Section I). A mobile
// service provider wants to promote a call package to customers whose
// communication patterns resemble a preferred customer's. The customer's
// data — like everyone's — is scattered across the base stations they pass,
// so the provider runs DI-matching over a synthetic city and compares the
// three strategies on accuracy and cost.
//
// Run with: go run ./examples/callpackage
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"dimatch"
)

func main() {
	// A synthetic city: 310 labelled persons (the paper's study size) over
	// 64 base stations, two days of 6-hour intervals.
	cfg := dimatch.DefaultCityConfig()
	city, err := dimatch.GenerateCity(cfg)
	if err != nil {
		log.Fatal(err)
	}

	c, err := dimatch.NewCluster(dimatch.Options{
		Params:   dimatch.Params{Samples: 8, Epsilon: 1, Seed: 7, PositionSalted: true},
		MinScore: 0.9,
	}, dimatch.StationData(city))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown() //nolint:errcheck // example teardown

	// The preferred customer: person 0, an office worker. Their per-station
	// local patterns form the query; everyone sharing their category is the
	// ground-truth relevant set.
	const preferred = dimatch.PersonID(0)
	query := dimatch.QueryFromPerson(city, 1, preferred)
	relevant := dimatch.RelevantSet(city, preferred)
	fmt.Printf("preferred customer %d has data at %d stations; %d persons share their segment\n\n",
		preferred, len(query.Locals), len(relevant))

	// The three strategies run concurrently over the same cluster: each
	// Search multiplexes its own requests over the shared station links and
	// gets back only its own replies.
	strategies := []dimatch.Strategy{dimatch.StrategyNaive, dimatch.StrategyBF, dimatch.StrategyWBF}
	outcomes := make([]*dimatch.Outcome, len(strategies))
	var wg sync.WaitGroup
	for i, strat := range strategies {
		i, strat := i, strat
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := c.Search(context.Background(), []dimatch.Query{query}, dimatch.WithStrategy(strat))
			if err != nil {
				log.Fatal(err)
			}
			outcomes[i] = out
		}()
	}
	wg.Wait()

	for i, strat := range strategies {
		out := outcomes[i]
		var retrieved []dimatch.PersonID
		for _, p := range out.Persons(1) {
			if p != preferred {
				retrieved = append(retrieved, p)
			}
		}
		score := dimatch.Evaluate(retrieved, relevant)
		fmt.Printf("%-6s retrieved %3d customers  %v\n", strat, len(retrieved), score)
		fmt.Printf("       traffic %6d B up / %8d B down, center storage %8d B, %v\n",
			out.Cost.BytesUp, out.Cost.BytesDown, out.Cost.CenterStorageBytes, out.Cost.Elapsed)
	}

	fmt.Println("\nnaive ships every pattern and answers the exact ε-query (stricter than the")
	fmt.Println("labelled segment, hence its low recall against segment ground truth); BF cannot")
	fmt.Println("verify its candidates; WBF sends only (ID, weight) pairs and recovers the segment")
}
