// Quickstart: the paper's running example (Section IV) end to end.
//
// The query pattern set is the global pattern {3,4,5} with local patterns
// {1,2,3} and {2,2,2}. Five residents are spread over three base stations:
//
//   - person 10 splits exactly like the query ({1,2,3} + {2,2,2}) — a true
//     match assembled from two stations, weight 1;
//   - person 11 holds the whole global pattern at one station — weight 1;
//   - person 12 has {3,4,5} at all three stations (the paper's
//     counterexample: aggregate {9,12,15}), deleted by the sum>1 rule;
//   - person 13 is unrelated;
//   - person 14 has only the first local piece — a partial match, weight ½.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dimatch"
)

func main() {
	stations := map[uint32]map[dimatch.PersonID]dimatch.Pattern{
		0: {
			10: {1, 2, 3},
			12: {3, 4, 5},
			13: {7, 1, 9},
			14: {1, 2, 3},
		},
		1: {
			10: {2, 2, 2},
			12: {3, 4, 5},
		},
		2: {
			11: {3, 4, 5},
			12: {3, 4, 5},
		},
	}

	c, err := dimatch.NewCluster(dimatch.Options{
		Params: dimatch.Params{Samples: 3, Epsilon: 0, Seed: 42},
	}, stations)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Shutdown() //nolint:errcheck // example teardown

	query := dimatch.Query{
		ID:     1,
		Locals: []dimatch.Pattern{{1, 2, 3}, {2, 2, 2}},
	}
	// Search is context-aware: pass a deadline or cancellation as needed.
	// With no options it runs the WBF strategy under the cluster defaults.
	out, err := c.Search(context.Background(), []dimatch.Query{query})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DI-matching results for global pattern {3,4,5}:")
	for _, r := range out.PerQuery[1] {
		fmt.Printf("  person %-3d weight %d/%d = %.2f  (reported by %d station(s))\n",
			r.Person, r.Numerator, r.Denominator, r.Score(), r.Stations)
	}
	fmt.Printf("\ntraffic: %d B disseminated, %d B reported back\n",
		out.Cost.BytesDown, out.Cost.BytesUp)
	fmt.Println("note: person 12 (three whole copies, aggregate {9,12,15}) was deleted by the weight-sum rule")
}
