package dimatch

import (
	"context"

	"dimatch/internal/adapt"
	"dimatch/internal/cluster"
	"dimatch/internal/core"
	"dimatch/internal/index"
	"dimatch/internal/metrics"
	"dimatch/internal/pattern"
	"dimatch/internal/stream"
)

// Core vocabulary, aliased from the implementation packages so the public
// surface is a single import.
type (
	// Pattern is an integer communication-pattern time series (one value
	// per interval, Definition 1 of the paper).
	Pattern = pattern.Pattern
	// Query is one pattern set to search for: the local patterns whose
	// element-wise sum is the global pattern that defines a match.
	Query = core.Query
	// QueryID identifies a query within a batch.
	QueryID = core.QueryID
	// PersonID identifies a mobile phone across the network.
	PersonID = core.PersonID
	// Params carries the WBF pipeline knobs (filter bits m, hashes k,
	// samples b, tolerance ε, seed).
	Params = core.Params
	// Result is one ranked answer: person, exact weight fraction, and the
	// number of stations that reported them.
	Result = core.Result
	// Options configures a cluster's default search knobs (params, top-K,
	// sizing); every knob can be overridden per call with a SearchOption.
	Options = cluster.Options
	// SearchOption configures a single Search call.
	SearchOption = cluster.SearchOption
	// Strategy selects naive / BF / WBF execution.
	Strategy = cluster.Strategy
	// RoutingMode selects how a WBF search picks the stations it fans out
	// to: summary-routed pruning (the default), classic full fan-out, or
	// digest-tree descent (see docs/ROUTING.md).
	RoutingMode = cluster.RoutingMode
	// RoutingState reports the coordinator's routing-state footprint: cached
	// per-station digests plus the digest tree's inner nodes. It is the
	// per-coordinator figure BENCH_hierarchy.json tracks across tiers.
	RoutingState = cluster.RoutingState
	// Outcome is a search's ranked results plus cost accounting.
	Outcome = cluster.Outcome
	// CostReport quantifies a search's traffic, storage and latency.
	CostReport = cluster.CostReport
	// Confusion scores retrieved-vs-relevant sets (precision/recall/F1).
	Confusion = metrics.Confusion
	// ToleranceMode selects how ε maps into the accumulated domain.
	ToleranceMode = core.ToleranceMode
	// ClusterStats is a cluster-wide storage snapshot fetched from the
	// stations over the wire, cached per membership epoch.
	ClusterStats = cluster.Stats
	// StationStats is one station's resident count and storage bytes, as
	// reported by the station itself.
	StationStats = cluster.StationStats
	// PlaceOption configures a single Place call (see WithReplication).
	PlaceOption = cluster.PlaceOption
	// HealReport summarizes one re-replication/rebalancing pass over the
	// placed patterns (see Rebalance).
	HealReport = cluster.HealReport
	// StreamOptions configures a streaming ingest pipeline (see Stream).
	StreamOptions = stream.Options
	// Ingestor is a running streaming ingest pipeline (see Stream).
	Ingestor = stream.Ingestor
	// StreamAdmission selects what a saturated pipeline does with new
	// submissions: StreamBlock or StreamShed.
	StreamAdmission = stream.Admission
	// StreamStats is a streaming pipeline's health snapshot: admission,
	// flush and eviction totals plus per-station queue depths. Returned by
	// Ingestor.Report and surfaced (merged across pipelines) in
	// ClusterStats.Stream.
	StreamStats = metrics.StreamStats
	// StreamStationStats is one station shard's entry in StreamStats.
	StreamStationStats = metrics.StreamStationStats
	// ParamPlan is a traffic-adaptive digest parameter table: per-position
	// bit weights, hash counts and quanta, derived by RederiveParams and
	// rolled out under one epoch (see docs/OPERATIONS.md).
	ParamPlan = index.Plan
	// ParamRollout summarizes one parameter rollout: the installed epoch
	// and which stations applied the plan, stayed static, were skipped or
	// failed.
	ParamRollout = cluster.ParamRollout
	// TrafficProfile is the coordinator's accumulated per-position traffic
	// profile — the input RederiveParams derives a plan from.
	TrafficProfile = adapt.Snapshot
)

// Strategies, re-exported.
const (
	StrategyNaive = cluster.StrategyNaive
	StrategyBF    = cluster.StrategyBF
	StrategyWBF   = cluster.StrategyWBF
)

// Routing modes, re-exported. RoutingSummary — the default — probes the
// coordinator's cached per-station summaries and skips stations that cannot
// hold a match; RoutingFull forces the classic every-station fan-out;
// RoutingTree plans by descending a Bloofi-style digest tree, pruning whole
// subtrees per check instead of scanning every digest (docs/ROUTING.md).
const (
	RoutingSummary = cluster.RoutingSummary
	RoutingFull    = cluster.RoutingFull
	RoutingTree    = cluster.RoutingTree
)

// ParseRoutingMode is the inverse of RoutingMode.String: it maps "summary",
// "full" and "tree" (case-insensitively) to the routing constants — the
// canonical way for CLIs to turn a flag into a RoutingMode.
func ParseRoutingMode(s string) (RoutingMode, error) { return cluster.ParseRoutingMode(s) }

// ParseStrategy is the inverse of Strategy.String: it maps "naive", "bf" and
// "wbf" (case-insensitively) to the strategy constants — the canonical way
// for CLIs to turn a flag into a Strategy.
func ParseStrategy(s string) (Strategy, error) { return cluster.ParseStrategy(s) }

// Per-call search options, re-exported. Each overrides the corresponding
// cluster Options default for one Search call.

// WithStrategy selects the execution strategy (default StrategyWBF).
func WithStrategy(s Strategy) SearchOption { return cluster.WithStrategy(s) }

// WithTopK limits each query's answer; <= 0 returns all qualified persons.
func WithTopK(k int) SearchOption { return cluster.WithTopK(k) }

// WithVerify toggles the WBF verification phase for this call.
func WithVerify(v bool) SearchOption { return cluster.WithVerify(v) }

// WithMinScore drops WBF and naive results scoring below the threshold.
func WithMinScore(s float64) SearchOption { return cluster.WithMinScore(s) }

// WithTargetFP overrides the auto-sizing false-positive target.
func WithTargetFP(fp float64) SearchOption { return cluster.WithTargetFP(fp) }

// WithBatching bounds how many queries a WBF search packs into one batched
// wire exchange. n <= 0 (the default) packs the whole query set into a
// single exchange per station, n > 1 splits it into rounds of at most n
// queries, and n == 1 disables batching — one filter and one frame per
// query, which is also what stations speaking an older wire version are
// served automatically. Batching changes traffic and latency; true matches
// rank identically at every batch size, though with auto-sized filters
// (Params.Bits == 0) the per-round sizing can shift which rare Bloom false
// positives slip through.
func WithBatching(n int) SearchOption { return cluster.WithBatching(n) }

// WithRouting selects the fan-out routing mode for one WBF search (default
// RoutingSummary, or the cluster's Options.Routing). Summary routing sends
// each query batch only to stations whose cached routing summary admits a
// possible match — stations without a usable summary are always visited and
// an all-pruned plan falls back to full fan-out, so results and recall are
// identical to RoutingFull; only the wasted exchanges differ
// (CostReport.StationsPruned counts them). RoutingTree keeps the same
// guarantees but plans by descending a Bloofi-style digest tree (fanout set
// by Options.TreeFanout), pruning whole subtrees with one union check —
// sublinear planning cost on large memberships, measured in
// CostReport.SubtreeProbes. BF and naive searches ignore the mode and always
// fan out fully. Against region coordinators (see ServeRegion) every mode
// additionally prunes whole regions by their subtree union digests before
// delegating. See docs/ROUTING.md.
func WithRouting(m RoutingMode) SearchOption { return cluster.WithRouting(m) }

// Sentinel errors returned by Search, re-exported for errors.Is checks.
var (
	// ErrNoQueries reports an empty query batch.
	ErrNoQueries = cluster.ErrNoQueries
	// ErrLengthMismatch reports a query whose time-series length does not
	// match the cluster's.
	ErrLengthMismatch = cluster.ErrLengthMismatch
	// ErrClusterClosed reports a Search after Shutdown.
	ErrClusterClosed = cluster.ErrClusterClosed
	// ErrCancelled reports a cancelled or timed-out search; it wraps the
	// context's error.
	ErrCancelled = cluster.ErrCancelled
	// ErrUnknownStrategy reports a strategy outside the known set.
	ErrUnknownStrategy = cluster.ErrUnknownStrategy
	// ErrUnknownRouting reports a routing mode outside the known set.
	ErrUnknownRouting = cluster.ErrUnknownRouting
	// ErrUnknownStation reports a lifecycle call naming a non-member station.
	ErrUnknownStation = cluster.ErrUnknownStation
	// ErrStationExists reports an AddStation id that is already a member.
	ErrStationExists = cluster.ErrStationExists
	// ErrNoAliveStations reports a Place or Rebalance call on a cluster whose
	// member stations are all dead.
	ErrNoAliveStations = cluster.ErrNoAliveStations
)

// Streaming admission modes, re-exported. StreamBlock (the default) makes a
// saturated pipeline's Submit wait for queue space — backpressure on the
// producer; StreamShed makes it drop the submission with ErrOverloaded, the
// drop accounted in StreamStats.Shed.
const (
	StreamBlock = stream.Block
	StreamShed  = stream.Shed
)

// Streaming sentinel errors, re-exported for errors.Is checks.
var (
	// ErrOverloaded reports a shed-mode Submit that found the pipeline's
	// intake queue full; the submission was dropped and accounted.
	ErrOverloaded = stream.ErrOverloaded
	// ErrStreamClosed reports a Submit or Flush on a closed Ingestor.
	ErrStreamClosed = stream.ErrClosed
)

// Tolerance modes, re-exported. ToleranceScaled guarantees no false
// negatives with respect to the per-interval ε; ToleranceAbsolute is the
// tighter, cheaper ablation.
const (
	ToleranceScaled   = core.ToleranceScaled
	ToleranceAbsolute = core.ToleranceAbsolute
)

// DefaultSamples is the paper's converged sample count b = 12.
const DefaultSamples = core.DefaultSamples

// DefaultReplication is the replica count Place uses when WithReplication is
// not given: every placed pattern survives any single station failure.
const DefaultReplication = cluster.DefaultReplication

// WithReplication sets how many stations receive a copy of each placed
// pattern (default DefaultReplication). The factor is clamped to the alive
// membership at execution time, but the requested value is recorded: when
// the cluster later grows, reconciliation tops placements back up.
func WithReplication(r int) PlaceOption { return cluster.WithReplication(r) }

// Cluster is a running DI-matching deployment: one data center plus one
// goroutine-backed base station per entry of the station data map.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster builds and starts a cluster over per-station local patterns.
// All patterns must share one time-series length. Callers own Shutdown.
func NewCluster(opts Options, stationData map[uint32]map[PersonID]Pattern) (*Cluster, error) {
	inner, err := cluster.New(opts, stationData)
	if err != nil {
		return nil, err
	}
	inner.Start()
	return &Cluster{inner: inner}, nil
}

// NewEmptyCluster builds and starts a cluster of stations holding no
// patterns yet — the starting point of a placement-first deployment, where
// every pattern arrives through Place (or Ingest) on the running cluster.
// The pattern length New would otherwise derive from seed data must be
// given. Callers own Shutdown.
func NewEmptyCluster(opts Options, stationIDs []uint32, patternLength int) (*Cluster, error) {
	inner, err := cluster.NewEmpty(opts, stationIDs, patternLength)
	if err != nil {
		return nil, err
	}
	inner.Start()
	return &Cluster{inner: inner}, nil
}

// Search runs one batch of queries and returns ranked results and cost
// accounting. With no options it runs a WBF search under the cluster's
// Options; per-call options (WithStrategy, WithTopK, WithVerify,
// WithMinScore, WithTargetFP) override those defaults for this call only.
//
// Search honors ctx — cancellation or timeout abandons the in-flight
// fan-out round and returns an error wrapping ErrCancelled and ctx.Err()
// without disturbing the station links — and any number of Search calls may
// run concurrently over one cluster: each link serializes outgoing frames
// and routes replies back to the owning search by wire request ID.
func (c *Cluster) Search(ctx context.Context, queries []Query, opts ...SearchOption) (*Outcome, error) {
	return c.inner.Search(ctx, queries, opts...)
}

// SearchWithStrategy runs one batch under a fixed strategy with the
// cluster's default options and no cancellation — the pre-context API.
//
// Deprecated: Use Search with WithStrategy, which adds context support and
// per-call options. SearchWithStrategy remains only so existing callers can
// migrate incrementally.
func (c *Cluster) SearchWithStrategy(queries []Query, strategy Strategy) (*Outcome, error) {
	return c.inner.Search(context.Background(), queries, cluster.WithStrategy(strategy)) //dimatch:allow ctxflow — deprecated pre-context shim kept for migration
}

// Ingest adds (or replaces) resident patterns at one station of a running
// cluster — the center routing freshly observed call data to the station
// that saw it. The mutation travels the station's own request/reply loop,
// so it applies between exchanges and never races an in-flight search.
// Pattern lengths must match the cluster's (ErrLengthMismatch otherwise);
// all-zero patterns are dropped by the station.
func (c *Cluster) Ingest(ctx context.Context, stationID uint32, patterns map[PersonID]Pattern) error {
	return c.inner.Ingest(ctx, stationID, patterns)
}

// Evict removes residents from one station of a running cluster — expired
// retention windows, opted-out subscribers, or data handed off elsewhere.
// Persons the station does not hold are ignored. Evict does not release a
// placed person from management — reconciliation will restore their evicted
// copy; use Unplace for that.
func (c *Cluster) Evict(ctx context.Context, stationID uint32, persons []PersonID) error {
	return c.inner.Evict(ctx, stationID, persons)
}

// Place ingests patterns under automatic placement: each person's pattern is
// copied to the stations that win the rendezvous (HRW) hash of (person,
// station) over the alive membership — WithReplication many of them, default
// DefaultReplication. Placed patterns are replica-managed from then on:
// search aggregation dedupes their replicas' reports (highest score wins), a
// replica lost mid-search is covered by the survivors, and membership
// changes trigger re-replication and rebalancing so the requested factor is
// maintained without the caller naming stations. A person must be either
// placed or station-addressed, never both; Unplace releases them back.
func (c *Cluster) Place(ctx context.Context, patterns map[PersonID]Pattern, opts ...PlaceOption) error {
	return c.inner.Place(ctx, patterns, opts...)
}

// Unplace releases persons from automatic placement, evicting their replicas
// from every alive station. Persons that were never placed are ignored.
func (c *Cluster) Unplace(ctx context.Context, persons []PersonID) error {
	return c.inner.Unplace(ctx, persons)
}

// Rebalance runs one explicit reconciliation pass over the placed patterns
// and reports what it did. Membership changes (AddStation, RemoveStation,
// KillStation) already reconcile automatically; an explicit pass is useful
// after transient failures or to verify placement health.
func (c *Cluster) Rebalance(ctx context.Context) (HealReport, error) {
	return c.inner.Rebalance(ctx)
}

// Placed returns the number of persons under automatic placement.
func (c *Cluster) Placed() int { return c.inner.Placed() }

// AddStation grows a running cluster with a new in-process station holding
// the given local patterns (which may be empty). Searches already in flight
// complete against the membership they started with; later searches fan out
// to the new station too. Returns ErrStationExists if the id is taken and
// ErrLengthMismatch if a pattern's length differs from the cluster's.
func (c *Cluster) AddStation(ctx context.Context, id uint32, locals map[PersonID]Pattern) error {
	return c.inner.AddStation(ctx, id, locals)
}

// RemoveStation shrinks a running cluster: the station leaves the
// membership, receives a best-effort shutdown frame and its link is closed.
// A search in flight over the previous membership sees the departure as a
// failed exchange (CostReport.StationsFailed), never as an error.
func (c *Cluster) RemoveStation(ctx context.Context, id uint32) error {
	return c.inner.RemoveStation(ctx, id)
}

// Stats fetches every station's resident count and storage bytes over the
// wire. The snapshot is cached per membership epoch: repeated calls between
// mutations answer from the cache, and any mutation triggers a refetch.
func (c *Cluster) Stats(ctx context.Context) (*ClusterStats, error) {
	return c.inner.Stats(ctx)
}

// Stations returns the number of member base stations.
func (c *Cluster) Stations() int { return c.inner.Stations() }

// PatternLength returns the cluster's time-series length.
func (c *Cluster) PatternLength() int { return c.inner.PatternLength() }

// KillStation severs one station, simulating a failure; searches continue
// degraded. Placed patterns the station held are re-replicated from their
// surviving replicas onto the remaining stations.
func (c *Cluster) KillStation(id uint32) error { return c.inner.KillStation(id) }

// Shutdown stops every station goroutine and waits for them.
func (c *Cluster) Shutdown() error { return c.inner.Shutdown() }

// RoutingState reports the coordinator's current routing-state footprint:
// how many per-station digests are cached, their bytes, and the digest
// tree's inner-node count and bytes (zero until a RoutingTree search builds
// it). In a multi-tier deployment each coordinator holds state for its own
// members only — the sublinear per-coordinator figure the hierarchy
// benchmark records.
func (c *Cluster) RoutingState() RoutingState { return c.inner.RoutingState() }

// RederiveParams derives a fresh adaptive digest parameter plan from the
// traffic profiled by routed searches since the last derivation and rolls
// it out to every capable station as one epoch-atomic fan-out (wire v7).
// Each station redistributes its unchanged static memory budget toward the
// positions the traffic actually probes; results stay byte-identical to a
// never-adapted cluster and recall stays 1 — only who gets visited changes.
// Pre-v7 stations and region delegates are skipped; a station that cannot
// honor the plan degrades to its exact static behavior. See
// docs/OPERATIONS.md, "Adaptive parameters".
func (c *Cluster) RederiveParams(ctx context.Context) (*ParamRollout, error) {
	return c.inner.RederiveParams(ctx)
}

// ResetParams rolls every station back to the static parameter table and
// clears the traffic profile — the freeze/revert path of the adaptive
// layer.
func (c *Cluster) ResetParams(ctx context.Context) (*ParamRollout, error) {
	return c.inner.ResetParams(ctx)
}

// ParamState returns the live parameter epoch and plan (0, nil before any
// rollout). Searches stamp the epoch they planned under into
// CostReport.ParamEpoch.
func (c *Cluster) ParamState() (uint64, *ParamPlan) { return c.inner.ParamState() }

// TrafficSnapshot returns the coordinator's current traffic profile — what
// RederiveParams would derive the next plan from.
func (c *Cluster) TrafficSnapshot() TrafficProfile { return c.inner.TrafficSnapshot() }

// Stream starts a streaming ingest pipeline over the cluster and returns
// its Ingestor: a pool of encoder workers routing each submitted pattern to
// per-station applier shards by rendezvous (HRW) placement, bounded queues
// with explicit admission control (StreamBlock waits, StreamShed drops with
// ErrOverloaded), and batched acknowledged flushes over the station links.
// Flushed patterns are replica-managed exactly like Place'd ones — searches
// dedupe their replica reports and membership changes re-replicate them —
// and StreamOptions.TTL adds deadline-wheel eviction so stations self-trim
// under sustained load. Any number of pipelines may run over one cluster;
// each registers its health into ClusterStats.Stream until closed. The
// caller owns Close, which drains accepted patterns before stopping.
func (c *Cluster) Stream(opts StreamOptions) (*Ingestor, error) {
	return stream.New(c.inner, opts)
}

// Oracle computes the exact IPM answer directly from raw station data — the
// ground truth that StrategyNaive reproduces through the distributed
// pipeline.
func Oracle(stationData map[uint32]map[PersonID]Pattern, query Query, eps int64, topK int) ([]PersonID, error) {
	return cluster.Oracle(stationData, query, eps, topK)
}

// Evaluate scores a retrieved person list against the relevant set.
func Evaluate(retrieved, relevant []PersonID) Confusion {
	return metrics.Evaluate(retrieved, relevant)
}

// Similar reports whether two patterns match within ε at every interval
// (Eq. 2 of the paper).
func Similar(a, b Pattern, eps int64) bool { return pattern.Similar(a, b, eps) }

// Accumulate returns the prefix-sum representation (Eq. 3) that lets a
// single value carry both magnitude and time order.
func Accumulate(p Pattern) Pattern { return p.Accumulate() }
