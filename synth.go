package dimatch

import (
	"dimatch/internal/cdr"
	"dimatch/internal/core"
)

// Synthetic-city vocabulary, aliased from the generator package. The
// generator replaces the paper's proprietary mobile-network dataset with a
// deterministic city exhibiting the same two structural observations
// DI-matching exploits (periodic, divisible category curves; within-
// category local-pattern similarity). See DESIGN.md §2.
type (
	// CityConfig parameterizes a synthetic city.
	CityConfig = cdr.Config
	// City is a generated pattern-level dataset with ground-truth labels.
	City = cdr.Dataset
	// CityRecords is a generated record-level (CDR/CDL) capture.
	CityRecords = cdr.RecordSet
	// Category is a ground-truth occupation label.
	Category = cdr.Category
	// StationID identifies a base station in a synthetic city.
	StationID = cdr.StationID
	// CDR is one call detail record.
	CDR = cdr.CDR
	// CDL is one cell (base station) location row.
	CDL = cdr.CDL
)

// The six population categories of the synthetic city (Figure 1's curves).
const (
	OfficeWorker  = cdr.OfficeWorker
	Student       = cdr.Student
	NightShift    = cdr.NightShift
	Retiree       = cdr.Retiree
	FieldSales    = cdr.FieldSales
	Entertainment = cdr.Entertainment
)

// Categories returns all six synthetic categories.
func Categories() []Category { return cdr.Categories() }

// DefaultCityConfig returns a laptop-scale city: 310 persons (the paper's
// ground-truth study size), 64 stations, two days of 6-hour intervals.
func DefaultCityConfig() CityConfig { return cdr.DefaultConfig() }

// GenerateCity builds the pattern-level synthetic dataset.
func GenerateCity(cfg CityConfig) (*City, error) { return cdr.Generate(cfg) }

// GenerateCityRecords builds the full record-level capture; ExtractCity
// recovers the pattern dataset from records alone (the two paths are
// pinned equal by test).
func GenerateCityRecords(cfg CityConfig) (*CityRecords, error) { return cdr.GenerateRecords(cfg) }

// ExtractCity derives the pattern-level dataset from raw records, the way
// base stations process their CDR logs.
func ExtractCity(rs *CityRecords) (*City, error) { return cdr.Extract(rs) }

// StationData converts a synthetic city into the station-major pattern map
// a Cluster loads.
func StationData(city *City) map[uint32]map[PersonID]Pattern {
	out := make(map[uint32]map[PersonID]Pattern, len(city.StationIDs()))
	for _, s := range city.StationIDs() {
		locals := city.StationLocals(s)
		m := make(map[PersonID]Pattern, len(locals))
		for p, l := range locals {
			m[core.PersonID(p)] = l
		}
		out[uint32(s)] = m
	}
	return out
}

// QueryFromPerson builds the query a service provider would issue to find
// customers similar to one reference person: that person's per-station
// local patterns.
func QueryFromPerson(city *City, id QueryID, person PersonID) Query {
	return Query{ID: id, Locals: city.QueryLocalsOf(cdr.PersonID(person))}
}

// PersonGlobals returns every person's global pattern (the element-wise sum
// of their locals) — the natural unit of a placement-first deployment,
// where Cluster.Place distributes whole patterns onto rendezvous-hashed
// replicas instead of the caller routing per-station pieces.
func PersonGlobals(city *City) map[PersonID]Pattern {
	out := make(map[PersonID]Pattern)
	for _, c := range Categories() {
		for _, p := range city.PersonsInCategory(c) {
			out[core.PersonID(p)] = city.GlobalOf(p)
		}
	}
	return out
}

// PersonLocals returns one person's local patterns keyed by the station
// holding them — the station-addressed form Cluster.Ingest and
// Cluster.Evict speak.
func PersonLocals(city *City, person PersonID) map[uint32]Pattern {
	locals := city.LocalsOf(cdr.PersonID(person))
	out := make(map[uint32]Pattern, len(locals))
	for s, l := range locals {
		out[uint32(s)] = l
	}
	return out
}

// CleanReference returns a category exemplar whose role anchors occupy
// distinct stations, so their query locals expose the category's full
// split. A reference whose anchors collapsed onto one station has merged
// locals that other members' separate pieces cannot partition; providers
// would query with clean exemplars. ok is false if the category has none.
func CleanReference(city *City, c Category) (PersonID, bool) {
	for _, id := range city.PersonsInCategory(c) {
		p, err := city.PersonByID(id)
		if err != nil {
			continue
		}
		if len(city.LocalsOf(id)) == len(p.Anchors) {
			return PersonID(id), true
		}
	}
	return 0, false
}

// RelevantSet returns the ground-truth relevant persons for a query built
// from the given person: everyone sharing their category (excluding the
// person themself, who is trivially retrieved).
func RelevantSet(city *City, person PersonID) []PersonID {
	p, err := city.PersonByID(cdr.PersonID(person))
	if err != nil {
		return nil
	}
	var out []PersonID
	for _, other := range city.PersonsInCategory(p.Category) {
		if other == p.ID {
			continue
		}
		out = append(out, core.PersonID(other))
	}
	return out
}
