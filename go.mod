module dimatch

go 1.22
