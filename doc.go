// Package dimatch is a from-scratch Go implementation of DI-matching, the
// Weighted-Bloom-Filter framework for Incomplete Pattern Matching in
// distributed mobile environments from
//
//	Liu, Kang, Chen, Ni. "Distributed Incomplete Pattern Matching via a
//	Novel Weighted Bloom Filter." ICDCS 2012.
//
// # The problem
//
// A person's communication pattern (calls, durations, partners per time
// interval) is scattered over the base stations they pass. Given a query
// pattern and a tolerance ε, Incomplete Pattern Matching asks for the top-K
// persons whose never-materialized global pattern — the sum of their
// per-station local patterns — matches the query at every interval.
// Shipping all data to a center answers exactly but drowns the backhaul;
// matching locally and unioning answers cheaply but wrongly.
//
// # The approach
//
// The pipeline is place → route → probe → verify:
//
//   - Place: patterns live where the data (or the rendezvous hash) puts
//     them. Station-addressed ingest pins a pattern to the station that
//     observed it; Place copies it to the R stations that win the HRW hash
//     and keeps that invariant standing through churn.
//   - Route: the coordinator encodes the query's local-pattern
//     combinations into a Weighted Bloom Filter — accumulated (prefix-sum)
//     form, b deterministic sample points, an exact integer weight attached
//     to every set bit — and, before fanning out, probes its cached
//     per-station summaries to skip stations that provably hold no resident
//     inside any combination's ε band. Query exchanges go only to stations
//     that might answer.
//   - Probe: each visited station probes its residents against the filter
//     (a whole batch of queries in one walk) and returns only
//     (person, weight) pairs; the center sums weights per person — disjoint
//     combination weights add, a full partition sums to exactly 1, and sums
//     above 1 expose aggregates that cannot equal the query — then ranks.
//   - Verify: optionally, the center fetches the ranked candidates' local
//     patterns from the full membership, materializes their globals and
//     keeps only exact Eq. 2 matches.
//
// # Using the library
//
//	data := ...  // map[stationID]map[PersonID]Pattern
//	c, err := dimatch.NewCluster(dimatch.Options{TopK: 10}, data)
//	defer c.Shutdown()
//	out, err := c.Search(ctx, []dimatch.Query{{ID: 1, Locals: locals}})
//	for _, r := range out.PerQuery[1] { fmt.Println(r.Person, r.Score()) }
//
// Search honors its context — a cancellation or deadline abandons the
// in-flight fan-out round and returns an error wrapping ErrCancelled
// without disturbing the station links — and is safe to call from any
// number of goroutines over one cluster: every station link multiplexes
// concurrent searches by wire request ID. Per-call options override the
// cluster's defaults for a single search:
//
//	out, err := c.Search(ctx, queries,
//		dimatch.WithStrategy(dimatch.StrategyBF),
//		dimatch.WithTopK(5),
//		dimatch.WithVerify(true))
//
// # Routed searches
//
// Summary routing is on by default: every station can answer a wire-v5
// summary pull with a compact Bloom digest of its residents' accumulated
// cells, the coordinator caches the digests (ingest delta-updates them,
// evict and membership changes invalidate them), and each WBF search visits
// only the stations whose digest admits a possible match. Pruning is
// strictly conservative — stations without a usable digest are always
// visited and an all-pruned plan falls back to full fan-out — so results
// equal full fan-out and only the wasted exchanges differ:
//
//	out, err := c.Search(ctx, queries)                                  // routed (default)
//	out, err = c.Search(ctx, queries, dimatch.WithRouting(dimatch.RoutingFull)) // classic fan-out
//	fmt.Println(out.Cost.StationsPruned, out.Cost.SummaryRefreshes)
//
// BENCH_routing.json records the saving on a selective workload (at 64
// stations a single-target search visits only the target's 2 replica
// stations) and docs/OPERATIONS.md covers when routing pays and how
// summaries are sized.
//
// # Hierarchical routing
//
// Past a few hundred stations the flat plan itself becomes the cost: the
// coordinator probes and stores one digest per station. RoutingTree
// arranges the cached digests in a Bloofi-style digest tree so planning
// descends unions instead of scanning leaves, and ServeRegion moves whole
// subtrees out of process — a region coordinator is a full cluster over
// its member stations that serves its parent like one big station,
// answering delegated search rounds (wire v6) with raw partials the root
// merges, ranks and verifies globally:
//
//	sub, err := dimatch.NewEmptyCluster(opts, memberIDs, length)
//	go dimatch.ServeRegion(regionID, sub, linkToParent)   // region process
//	root, err := dimatch.NewClusterWithLinks(opts, links, length, nil, nil)
//	out, err := root.Search(ctx, queries, dimatch.WithRouting(dimatch.RoutingTree))
//	fmt.Println(out.Cost.TierHops, out.Cost.SubtreeProbes)
//
// Every tier prunes conservatively, so routed results stay byte-identical
// to a flat full fan-out. BENCH_hierarchy.json records the effect (0.16·N
// probes per query and ~30× less per-coordinator routing state at 1024
// stations) and docs/ROUTING.md carries the design, the soundness
// argument and the benchmark methodology.
//
// # Adaptive digest parameters
//
// Routed searches feed a traffic profiler as a side effect: which
// positions the probes sample, how wide the bands are, and which lookups
// the digests prove nobody can serve. RederiveParams solves a Daisy-style
// allocation over that profile — per-position bit budgets, hash counts
// and quanta under each station's unchanged memory budget — and rolls the
// plan out to every wire-v7 station as one epoch-atomic parameter update;
// searches stamp the epoch they ran under into CostReport.ParamEpoch and
// ResetParams reverts the fleet to static the same way:
//
//	roll, err := c.RederiveParams(ctx)
//	fmt.Println(len(roll.Applied), "stations adaptive at epoch", roll.Epoch)
//	epoch, plan := c.ParamState()
//
// Adaptation redistributes admission bits, never match behavior: results
// stay byte-identical to a never-adapted cluster, recall stays 1, and
// every failure path — a pre-v7 station, a plan a station cannot honor, a
// failed exchange, a solver that cannot beat static — degrades to the
// static table. BENCH_adaptive.json records the gain at equal memory on a
// Zipfian traffic mix and docs/OPERATIONS.md covers when to rederive and
// how to size Options.AdaptWindow.
//
// # Batched searches
//
// A WBF search ships its whole query set in one batched wire exchange per
// station by default; each station answers the batch with a single walk
// over its resident store, parallelized across a bounded worker pool.
// WithBatching(n) bounds the batch per call (Options.BatchSize sets the
// cluster default): 0 packs everything into one round, n > 1 splits into
// rounds of n, and 1 disables batching — one filter and one frame per
// query, which is also what stations speaking a pre-batch wire version
// are served automatically. Batching changes traffic and latency, not the
// ranking of true matches (auto-sized filters can shift which rare Bloom
// false positives slip through, as any resizing does); BENCH_batch.json
// records the measured difference and ARCHITECTURE.md the methodology.
//
// # Live clusters
//
// A running cluster is mutable while searches are in flight. Ingest and
// Evict change a station's resident patterns — the mutation travels the
// station's own request/reply loop, so it applies between exchanges and
// never races a search:
//
//	err = c.Ingest(ctx, stationID, map[dimatch.PersonID]dimatch.Pattern{
//		4711: {0, 3, 1}, // freshly observed call data
//	})
//	err = c.Evict(ctx, stationID, []dimatch.PersonID{4711})
//
// AddStation (in-process), AddStationLink (remote, e.g. an accepted TCP
// connection) and RemoveStation grow and shrink the membership, which is
// kept in an epoch-versioned snapshot: a search pins the epoch current at
// its start and fans out over exactly that station set, so a concurrent
// membership change never disturbs it — an overlapping removal is counted
// in CostReport.StationsFailed, never surfaced as an error. Stats fetches
// every station's resident count and storage bytes over the wire, cached
// per epoch.
//
// # Replicated placement
//
// Place hands pattern locality to the cluster: each person's pattern is
// copied to the stations that win a rendezvous (HRW) hash of (person,
// station) — WithReplication many, default 2 — with no station IDs in the
// call:
//
//	c, err := dimatch.NewEmptyCluster(opts, []uint32{1, 2, 3, 4}, length)
//	err = c.Place(ctx, patterns, dimatch.WithReplication(2))
//
// Searches dedupe a placed person's replica reports (the highest score
// wins, so duplicate copies never trip the over-match deletion), a replica
// lost mid-search is covered by the survivors, and every membership change
// triggers a reconciliation pass that re-replicates under-replicated
// patterns from their surviving copies and rebalances the ones whose
// rendezvous winners changed. Rebalance runs a pass on demand and reports
// it; Unplace releases persons back to station-addressed management.
// BENCH_replication.json records the resulting guarantee: at replication 2,
// killing any single station leaves recall at the healthy cluster's value.
//
// A deterministic city-scale synthetic CDR generator (GenerateCity) stands
// in for the paper's proprietary dataset, and StrategyNaive / StrategyBF
// reproduce the paper's two baselines for comparison. See README.md for
// the architecture sketch and strategy comparison, ARCHITECTURE.md for the
// full layer-by-layer walkthrough, docs/WIRE.md for the frame-level
// protocol specification, and docs/OPERATIONS.md for the deployment and
// tuning guide (choosing R and the routing mode, sizing summaries, reading
// CostReport and Stats, the epoch/reconciliation lifecycle).
package dimatch
